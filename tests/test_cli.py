"""Unit tests for the command-line interface."""

from __future__ import annotations

import json

import pytest

from repro.cli import build_parser, main
from repro.telemetry import NULL_TELEMETRY, get_telemetry


class TestParser:
    def test_requires_a_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_parses_simulate_options(self):
        args = build_parser().parse_args(
            ["simulate", "braess", "--policy", "uniform", "--period", "0.1", "--fresh"]
        )
        assert args.command == "simulate"
        assert args.policy == "uniform"
        assert args.period == "0.1"
        assert args.fresh


class TestCommands:
    def test_list_instances(self, capsys):
        assert main(["list-instances"]) == 0
        output = capsys.readouterr().out
        assert "braess" in output
        assert "two-links" in output

    def test_describe(self, capsys):
        assert main(["describe", "braess"]) == 0
        output = capsys.readouterr().out
        assert "D (max path length)" in output
        assert "safe update period" in output

    def test_solve(self, capsys):
        assert main(["solve", "pigou-linear"]) == 0
        output = capsys.readouterr().out
        assert "Wardrop equilibrium" in output
        assert "duality gap" in output

    def test_solve_honours_explicit_zero_tolerance(self, capsys):
        # --tolerance 0 means "run to the iteration cap (or an exact gap)",
        # not "silently substitute the default tolerance".
        assert main(["solve", "parallel-8-affine", "--tolerance", "0"]) == 0
        output = capsys.readouterr().out
        assert "iterations = 2000" in output
        assert "converged = False" in output

    def test_solve_with_projection_gradient(self, capsys):
        assert main(["solve", "pigou-linear", "--method", "pg"]) == 0
        output = capsys.readouterr().out
        assert "(pg)" in output
        assert "duality gap" in output

    def test_solve_conjugate_method_implies_edge_flow(self, capsys):
        assert main(["solve", "sioux-falls-mini", "--method", "bfw"]) == 0
        output = capsys.readouterr().out
        assert "Edge-flow equilibrium" in output
        assert "(bfw" in output

    def test_solve_rejects_pg_with_edge_flow(self, capsys):
        assert main(["solve", "braess", "--method", "pg", "--edge-flow"]) == 2
        assert "path-based" in capsys.readouterr().err

    def test_solve_edge_flow_reports_raw_tstt(self, capsys):
        assert main(["solve", "sioux-falls-mini", "--edge-flow"]) == 0
        output = capsys.readouterr().out
        assert "Edge-flow equilibrium" in output
        assert "TSTT (raw TNTP units)" in output
        assert "relative duality gap" in output
        # raw TSTT must be in vehicle-minutes territory, not normalised units
        tstt_line = next(line for line in output.splitlines() if "TSTT (raw" in line)
        assert float(tstt_line.split("=")[1]) > 1e4

    def test_simulate_with_scenario(self, capsys):
        assert main([
            "simulate", "braess", "--policy", "uniform", "--period", "0.25",
            "--horizon", "3", "--scenario", "morning-peak",
        ]) == 0
        output = capsys.readouterr().out
        assert "scenario: morning-peak" in output

    def test_simulate_rejects_unknown_scenario(self, capsys):
        assert main([
            "simulate", "braess", "--period", "0.25", "--scenario", "nope",
        ]) == 2
        assert "unknown scenario" in capsys.readouterr().err

    def test_simulate_rejects_mismatched_scenario(self, capsys):
        # braess-closure needs the Braess shortcut edge
        assert main([
            "simulate", "pigou-linear", "--period", "0.25",
            "--scenario", "braess-closure",
        ]) == 2
        assert "braess" in capsys.readouterr().err

    def test_sweep_with_scenario_echoes_column(self, capsys):
        assert main([
            "sweep", "braess", "--policy", "uniform", "--periods", "0.2,0.4",
            "--horizon", "2", "--steps-per-phase", "10",
            "--scenario", "morning-peak",
        ]) == 0
        output = capsys.readouterr().out
        assert "scenario" in output
        assert "morning-peak" in output

    def test_simulate_auto_period(self, capsys):
        assert main(["simulate", "two-links", "--policy", "replicator",
                     "--horizon", "10"]) == 0
        output = capsys.readouterr().out
        assert "update period" in output
        assert "final eq. violation" in output

    def test_simulate_explicit_period_fresh(self, capsys):
        assert main(["simulate", "pigou-linear", "--policy", "uniform",
                     "--period", "0.1", "--horizon", "5", "--fresh"]) == 0
        assert "fresh info" in capsys.readouterr().out

    def test_simulate_rejects_auto_for_non_smooth_policy(self, capsys):
        assert main(["simulate", "two-links", "--policy", "better-response",
                     "--horizon", "5"]) == 2

    def test_simulate_rejects_non_positive_period(self):
        assert main(["simulate", "two-links", "--period", "0", "--horizon", "5"]) == 2

    def test_oscillate(self, capsys):
        assert main(["oscillate", "--beta", "2", "--period", "0.5", "--phases", "10"]) == 0
        output = capsys.readouterr().out
        assert "predicted phase-start latency" in output
        assert "measured" in output

    def test_unknown_instance_raises(self):
        with pytest.raises(KeyError):
            main(["describe", "not-an-instance"])


class TestTelemetryFlags:
    def test_simulate_trace_writes_jsonl(self, capsys, tmp_path):
        path = tmp_path / "sim.jsonl"
        assert main([
            "simulate", "two-links", "--policy", "uniform", "--period", "0.2",
            "--horizon", "2", "--trace", str(path),
        ]) == 0
        assert f"wrote trace {path}" in capsys.readouterr().out
        lines = [json.loads(line) for line in path.read_text().splitlines()]
        assert lines[0]["schema"] == "repro-trace/1"
        engines = [
            line["attrs"]["engine"] for line in lines
            if line.get("name") == "engine_run"
        ]
        assert engines == ["fluid-scalar"]
        assert get_telemetry() is NULL_TELEMETRY

    def test_simulate_metrics_prints_table(self, capsys):
        assert main([
            "simulate", "two-links", "--policy", "uniform", "--period", "0.2",
            "--horizon", "2", "--metrics",
        ]) == 0
        output = capsys.readouterr().out
        assert "telemetry metrics" in output
        assert "fluid.phases_integrated" in output

    def test_sweep_trace_metrics_and_progress(self, capsys, tmp_path):
        trace = tmp_path / "sweep.jsonl"
        csv_path = tmp_path / "sweep.csv"
        assert main([
            "sweep", "braess", "--policy", "uniform", "--periods", "0.2,0.4",
            "--horizon", "2", "--steps-per-phase", "10",
            "--trace", str(trace), "--metrics", "--progress",
            "--csv", str(csv_path),
        ]) == 0
        captured = capsys.readouterr()
        # Progress events stream to stderr as they happen.
        assert "[case_finished]" in captured.err
        assert "telemetry metrics" in captured.out
        # Flattened metrics merge into the persisted rows as tele_* columns.
        header = csv_path.read_text().splitlines()[0]
        assert "tele_runner.cases_completed" in header
        assert trace.exists()

    def test_report_renders_a_recorded_trace(self, capsys, tmp_path):
        path = tmp_path / "sim.jsonl"
        assert main([
            "simulate", "two-links", "--policy", "uniform", "--period", "0.2",
            "--horizon", "2", "--trace", str(path),
        ]) == 0
        capsys.readouterr()
        assert main(["report", str(path)]) == 0
        output = capsys.readouterr().out
        assert "engine runs" in output
        assert "fluid-scalar" in output
        assert "span breakdown" in output

    def test_report_bench_renders_throughput_matrix(self, capsys, tmp_path):
        path = tmp_path / "records.jsonl"
        path.write_text(json.dumps({
            "schema": "repro-bench/1", "bench": "b", "section": "s",
            "engine": "fluid-batch", "instance": "two-links",
            "cases": 8, "seconds": 0.5, "rate": 16.0,
        }) + "\n")
        assert main(["report", str(path), "--bench"]) == 0
        output = capsys.readouterr().out
        assert "fluid-batch" in output
        assert "two-links" in output

    def test_report_missing_file_errors(self, capsys, tmp_path):
        assert main(["report", str(tmp_path / "nope.jsonl")]) == 2
        assert capsys.readouterr().err


class TestReportErrorPaths:
    """Every bad input becomes one clean error line and exit code 2."""

    def _assert_clean_error(self, capsys, rc):
        assert rc == 2
        captured = capsys.readouterr()
        err_lines = [line for line in captured.err.splitlines() if line]
        assert len(err_lines) == 1
        assert err_lines[0].startswith("error:")
        assert "Traceback" not in captured.err

    def test_missing_file(self, capsys, tmp_path):
        self._assert_clean_error(
            capsys, main(["report", str(tmp_path / "missing.jsonl")])
        )

    def test_empty_file(self, capsys, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        self._assert_clean_error(capsys, main(["report", str(path)]))

    def test_malformed_jsonl_line(self, capsys, tmp_path):
        path = tmp_path / "broken.jsonl"
        path.write_text(
            '{"kind": "meta", "schema": "repro-trace/1", "spans": 1}\n{oops\n'
        )
        rc = main(["report", str(path)])
        assert rc == 2
        captured = capsys.readouterr()
        assert "line 2" in captured.err
        assert "Traceback" not in captured.err

    def test_version_mismatched_header(self, capsys, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text('{"kind": "meta", "schema": "repro-trace/99", "spans": 0}\n')
        rc = main(["report", str(path)])
        assert rc == 2
        captured = capsys.readouterr()
        assert "repro-trace/99" in captured.err
        assert "Traceback" not in captured.err

    def test_bench_mode_rejects_broken_file(self, capsys, tmp_path):
        path = tmp_path / "records.jsonl"
        path.write_text("not json at all\n")
        self._assert_clean_error(capsys, main(["report", str(path), "--bench"]))

    def test_bench_and_network_are_mutually_exclusive(self, capsys, tmp_path):
        rc = main(["report", "sioux-falls", "--bench", "--network"])
        assert rc == 2
        assert "error:" in capsys.readouterr().err


class TestObservabilityCli:
    def test_report_network_solves_and_prints_summary(self, capsys):
        assert main(["report", "braess", "--network"]) == 0
        output = capsys.readouterr().out
        assert "network report: braess: summary" in output
        assert "most congested links" in output
        assert "solved with" in output

    def test_report_network_unknown_instance_errors(self, capsys):
        assert main(["report", "no-such-instance", "--network"]) == 2
        assert "error:" in capsys.readouterr().err

    def test_solve_report_prints_network_tables(self, capsys):
        assert main(["solve", "braess", "--report"]) == 0
        output = capsys.readouterr().out
        assert "largest OD pairs" in output

    def test_solve_edge_flow_report(self, capsys):
        assert main(["solve", "sioux-falls-mini", "--edge-flow", "--report"]) == 0
        output = capsys.readouterr().out
        assert "most congested links" in output
        assert "v/c" in output

    def test_simulate_profile_prints_sampler_table(self, capsys):
        assert main([
            "simulate", "two-links", "--policy", "uniform", "--period", "0.2",
            "--horizon", "2", "--profile",
        ]) == 0
        assert "sampling profiler" in capsys.readouterr().out

    def test_simulate_ledger_records_run(self, capsys, tmp_path):
        from repro.telemetry.ledger import load_ledger

        ledger_dir = tmp_path / "ledger"
        assert main([
            "simulate", "two-links", "--policy", "uniform", "--period", "0.2",
            "--horizon", "2", "--ledger", str(ledger_dir),
        ]) == 0
        assert "ledgered run" in capsys.readouterr().out
        entries = load_ledger(ledger_dir)
        assert len(entries) == 1
        assert entries[0]["engine"] == "fluid-scalar"
        assert entries[0]["instance"] == "two-links"

    def test_sweep_ledger_records_cases(self, capsys, tmp_path):
        from repro.telemetry.ledger import load_ledger

        ledger_dir = tmp_path / "ledger"
        assert main([
            "sweep", "braess", "--policy", "uniform", "--periods", "0.2,0.4",
            "--horizon", "2", "--steps-per-phase", "10",
            "--ledger", str(ledger_dir),
        ]) == 0
        capsys.readouterr()
        entries = load_ledger(ledger_dir)
        kinds = {entry["kind"] for entry in entries}
        assert "engine_run" in kinds
        assert "sweep" in kinds
