"""The fluid-limit rerouting simulator with bulletin-board staleness.

:class:`ReroutingSimulator` integrates the dynamics of Eq. (3): at the start
of every phase of length ``T`` the bulletin board is refreshed with the live
edge latencies (and flow shares), and for the duration of the phase the
migration-rate field is computed against that frozen snapshot while the true
flow keeps moving.  Setting ``stale=False`` runs the up-to-date information
dynamics of Eq. (1) instead (the board is refreshed at every integration
step), which is the setting of Theorem 2.

The simulator records a :class:`~repro.core.trajectory.Trajectory` with
per-phase start/end flows, which is exactly the granularity the paper's
convergence-time statements are about ("the number of update periods not
starting at an approximate equilibrium").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Optional

import numpy as np

from ..telemetry.runtime import get_telemetry
from ..wardrop.flow import FlowVector
from ..wardrop.network import WardropNetwork
from .bulletin import BulletinBoard, FreshInformationBoard
from .dynamics import integrate, integration_step_for
from .policy import ReroutingPolicy
from .trajectory import PhaseRecord, Trajectory

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..scenarios.scenario import Scenario

StoppingCondition = Callable[[float, FlowVector], bool]


@dataclass
class SimulationConfig:
    """Configuration of a fluid-limit simulation run.

    Attributes
    ----------
    update_period:
        The bulletin-board refresh interval ``T``.
    horizon:
        Total simulated time.
    steps_per_phase:
        Number of integrator sub-steps per phase (controls accuracy).
    method:
        Integration scheme, ``"rk4"`` (default) or ``"euler"``.
    stale:
        If ``False`` the board is refreshed continuously (up-to-date
        information, Eq. 1); if ``True`` (default) it is refreshed only at
        phase boundaries (Eq. 3).
    record_every_step:
        If ``True`` a trajectory point is recorded at every integration
        sub-step; otherwise only at phase boundaries (the default, and what
        the convergence-time analyses need).
    """

    update_period: float = 0.1
    horizon: float = 50.0
    steps_per_phase: int = 50
    method: str = "rk4"
    stale: bool = True
    record_every_step: bool = False

    def __post_init__(self) -> None:
        if self.update_period <= 0:
            raise ValueError("update_period must be positive")
        if self.horizon <= 0:
            raise ValueError("horizon must be positive")
        if self.steps_per_phase <= 0:
            raise ValueError("steps_per_phase must be positive")


class ReroutingSimulator:
    """Simulates a rerouting policy on a network in the fluid limit.

    ``scenario`` optionally makes the environment nonstationary: at every
    phase start the scenario's modulation is sampled and frozen for the
    phase, so the bulletin board posts the *current* environment's latencies
    and (in fresh mode) the live field prices flows in it.  Within a phase
    the environment, like the board, does not move -- scenario changes are
    information events, applied exactly at phase boundaries.
    """

    def __init__(
        self,
        network: WardropNetwork,
        policy: ReroutingPolicy,
        config: SimulationConfig,
        scenario: Optional["Scenario"] = None,
    ):
        self.network = network
        self.policy = policy
        self.config = config
        self.scenario = scenario

    def run(
        self,
        initial_flow: Optional[FlowVector] = None,
        stop_when: Optional[StoppingCondition] = None,
    ) -> Trajectory:
        """Run the simulation and return the recorded trajectory.

        ``stop_when(time, flow)`` is evaluated at every phase boundary; when
        it returns ``True`` the run ends early (the final state is still
        recorded).
        """
        tele = get_telemetry()
        with tele.span(
            "engine_run",
            engine="fluid-scalar",
            instance=self.network.graph.graph.get("name") or "-",
            method=self.config.method,
            stale=self.config.stale,
            paths=self.network.num_paths,
        ) as run_span:
            trajectory = self._run(initial_flow, stop_when, tele)
            run_span.annotate(phases=len(trajectory.phases))
        tele.counter("fluid.runs").add()
        return trajectory

    def _run(
        self,
        initial_flow: Optional[FlowVector],
        stop_when: Optional[StoppingCondition],
        tele,
    ) -> Trajectory:
        config = self.config
        network = self.network
        # ``is None``, not truthiness: FlowVector defines __len__, so ``or``
        # would silently replace a zero-length flow instead of rejecting it.
        flow = FlowVector.uniform(network) if initial_flow is None else initial_flow
        if flow.network is not network:
            raise ValueError("initial flow belongs to a different network")
        board: BulletinBoard
        if config.stale:
            board = BulletinBoard(network, config.update_period)
        else:
            board = FreshInformationBoard(network)
        trajectory = Trajectory(
            network=network,
            policy_name=self.policy.label(),
            update_period=config.update_period if config.stale else 0.0,
        )
        step = integration_step_for(config.update_period, config.steps_per_phase)
        scenario = self.scenario
        time = 0.0
        if scenario is not None:
            scenario.require_edges(network)
            board.network = scenario.network_at(network, time)
        board.post(time, flow.values())
        trajectory.record(time, flow, board.phase_index)

        phases_counter = tele.counter("fluid.phases_integrated")
        refresh_counter = tele.counter("fluid.bulletin_refreshes")
        num_phases = int(np.ceil(config.horizon / config.update_period))
        for phase in range(num_phases):
            phase_start = phase * config.update_period
            phase_end = min((phase + 1) * config.update_period, config.horizon)
            start_flow = flow
            phase_span = tele.span("phase", index=phase, start=phase_start)
            with phase_span:
                if scenario is not None:
                    phase_network = scenario.network_at(network, phase_start)
                    board.network = phase_network
                else:
                    phase_network = network
                if config.stale:
                    # One frozen snapshot for the whole phase: sigma and mu
                    # are precomputed once instead of once per integrator
                    # stage (the trajectory is identical bit for bit; see
                    # ReroutingPolicy.frozen_growth_field).
                    if board.maybe_update(phase_start, flow.values()):
                        tele.event("bulletin_refresh", time=phase_start)
                        refresh_counter.add()
                    snapshot = board.snapshot
                    with tele.span("field_eval"):
                        field = self.policy.frozen_growth_field(
                            network, snapshot.path_flows, snapshot.path_latencies
                        )
                    with tele.span("integrate", state_bytes=flow.values().nbytes):
                        new_values = self._integrate_phase(
                            field, flow.values(), phase_start, phase_end, step,
                            trajectory, phase,
                        )
                else:
                    # Up-to-date information: probabilities follow the live
                    # state (priced in the phase's frozen environment).
                    def field(_t: float, state: np.ndarray) -> np.ndarray:
                        live_latencies = phase_network.path_latencies(state)
                        return self.policy.growth_rates(network, state, state, live_latencies)

                    with tele.span("integrate", state_bytes=flow.values().nbytes):
                        new_values = self._integrate_phase(
                            field, flow.values(), phase_start, phase_end, step,
                            trajectory, phase,
                        )
                    board.post(phase_end, new_values)
                flow = FlowVector(network, new_values, validate=False).projected()
            phases_counter.add()
            trajectory.record_phase(
                PhaseRecord(
                    index=phase,
                    start_time=phase_start,
                    end_time=phase_end,
                    start_flow=start_flow,
                    end_flow=flow,
                )
            )
            trajectory.record(phase_end, flow, phase)
            if stop_when is not None and stop_when(phase_end, flow):
                tele.event("stop_when_fired", time=phase_end, phase=phase)
                break
            if phase_end >= config.horizon:
                break
        return trajectory

    def _integrate_phase(
        self,
        field,
        state: np.ndarray,
        phase_start: float,
        phase_end: float,
        step: float,
        trajectory: Trajectory,
        phase: int,
    ) -> np.ndarray:
        """Integrate one phase, optionally recording every integrator sub-step."""
        if not self.config.record_every_step:
            return integrate(field, state, phase_start, phase_end, step, self.config.method)
        duration = phase_end - phase_start
        num_steps = max(1, int(np.ceil(duration / step)))
        sub_step = duration / num_steps
        current = state
        for i in range(num_steps):
            t0 = phase_start + i * sub_step
            current = integrate(field, current, t0, t0 + sub_step, sub_step, self.config.method)
            if i + 1 < num_steps:
                trajectory.record(
                    t0 + sub_step,
                    FlowVector(self.network, current, validate=False).projected(),
                    phase,
                )
        return current


def simulate(
    network: WardropNetwork,
    policy: ReroutingPolicy,
    update_period: float,
    horizon: float,
    initial_flow: Optional[FlowVector] = None,
    stale: bool = True,
    steps_per_phase: int = 50,
    method: str = "rk4",
    stop_when: Optional[StoppingCondition] = None,
    scenario: Optional["Scenario"] = None,
) -> Trajectory:
    """Convenience wrapper building a simulator and running it once."""
    config = SimulationConfig(
        update_period=update_period,
        horizon=horizon,
        steps_per_phase=steps_per_phase,
        method=method,
        stale=stale,
    )
    return ReroutingSimulator(network, policy, config, scenario=scenario).run(
        initial_flow, stop_when=stop_when
    )
