"""Unit tests for social cost, optimal flow and price of anarchy."""

from __future__ import annotations

import pytest

from repro.instances import pigou_network, pigou_optimal_cost, braess_network
from repro.wardrop import (
    FlowVector,
    MarginalCostLatency,
    LinearLatency,
    marginal_cost_network,
    optimal_flow,
    price_of_anarchy,
    social_cost,
)


class TestSocialCost:
    def test_matches_average_latency(self, braess):
        flow = FlowVector.uniform(braess)
        assert social_cost(flow) == pytest.approx(flow.average_latency())

    def test_pigou_equilibrium_cost_is_one(self, pigou):
        flow = FlowVector(pigou, [0.0, 1.0])
        assert social_cost(flow) == pytest.approx(1.0)


class TestMarginalCost:
    def test_linear_marginal_cost_doubles_slope(self):
        transformed = MarginalCostLatency(LinearLatency(2.0))
        assert transformed.value(0.5) == pytest.approx(2.0)  # 2x at x=0.5 -> 1 + 1
        assert transformed.integral(0.5) == pytest.approx(0.5 * 1.0)

    def test_marginal_cost_network_preserves_structure(self, pigou):
        twin = marginal_cost_network(pigou)
        assert twin.num_paths == pigou.num_paths
        assert twin.num_edges == pigou.num_edges


class TestOptimum:
    def test_pigou_linear_optimum(self):
        network = pigou_network(degree=1)
        optimum = optimal_flow(network)
        # Known optimum: half the traffic on the variable link.
        assert optimum.values()[1] == pytest.approx(0.5, abs=1e-3)
        assert social_cost(optimum) == pytest.approx(pigou_optimal_cost(1), abs=1e-3)

    def test_pigou_linear_price_of_anarchy(self):
        network = pigou_network(degree=1)
        cost_eq, cost_opt, ratio = price_of_anarchy(network)
        assert cost_eq == pytest.approx(1.0, abs=1e-3)
        assert cost_opt == pytest.approx(0.75, abs=1e-3)
        assert ratio == pytest.approx(4.0 / 3.0, abs=1e-2)

    def test_braess_price_of_anarchy(self):
        network = braess_network(with_shortcut=True)
        cost_eq, cost_opt, ratio = price_of_anarchy(network)
        assert cost_eq == pytest.approx(2.0, abs=1e-3)
        assert cost_opt == pytest.approx(1.5, abs=1e-2)
        assert ratio == pytest.approx(4.0 / 3.0, abs=2e-2)
