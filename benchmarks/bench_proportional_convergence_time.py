"""E5 -- Theorem 7: convergence time of proportional sampling (replicator).

Same measurement as E4 but for the replicator policy and the *weak*
(delta, eps)-equilibrium of Definition 4; the Theorem 7 bound
``O(1/(eps T) * (l_max/delta)^2)`` has no ``|P|`` factor, so the measured
counts should stay below a bound that does not grow with the number of links.
"""

from __future__ import annotations

import pytest

from repro.analysis import count_bad_phases, print_table
from repro.core import replicator_policy, simulate
from repro.core.bounds import proportional_convergence_bound
from repro.instances import heterogeneous_affine_links
from repro.wardrop import FlowVector

LINK_COUNTS = [2, 4, 8, 16]
DELTAS = [0.4, 0.2, 0.1]
EPSILON = 0.1


def run_replicator(network, horizon=120.0):
    policy = replicator_policy(network, exploration=1e-3)
    period = min(policy.safe_update_period(network), 1.0)
    # Start with most of the demand on one path but every path populated so
    # proportional sampling can discover alternatives.
    values = [0.05 / (network.num_paths - 1)] * network.num_paths
    values[0] = 0.95
    start = FlowVector(network, values)
    trajectory = simulate(
        network, policy, update_period=period, horizon=horizon,
        initial_flow=start, steps_per_phase=20,
    )
    return trajectory, period


@pytest.mark.experiment("E5")
def test_proportional_sampling_bad_phase_counts(report_header):
    rows = []
    for num_links in LINK_COUNTS:
        network = heterogeneous_affine_links(num_links, seed=7)
        trajectory, period = run_replicator(network)
        for delta in DELTAS:
            summary = count_bad_phases(trajectory, delta, EPSILON)
            bound = proportional_convergence_bound(network, period, delta, EPSILON)
            rows.append(
                {
                    "links(|P|)": num_links,
                    "delta": delta,
                    "T": period,
                    "weak_bad_phases": summary.weak_bad_phases,
                    "thm7_bound": bound,
                    "within_bound": summary.weak_bad_phases <= bound,
                    "total_phases": summary.total_phases,
                }
            )
    print_table(rows, title="E5: Theorem 7 -- proportional sampling convergence time")
    for row in rows:
        assert row["within_bound"]


@pytest.mark.experiment("E5")
def test_benchmark_replicator_run(benchmark, report_header):
    network = heterogeneous_affine_links(8, seed=7)
    trajectory, _ = benchmark(run_replicator, network, 30.0)
    assert len(trajectory.phases) > 0
