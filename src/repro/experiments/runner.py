"""Experiment execution: batched, pooled or serial dispatch of sweep cases.

The runner turns a list of :class:`~repro.analysis.sweeps.SweepCase` objects
into a :class:`~repro.analysis.sweeps.SweepResult` by choosing, per group of
cases, the cheapest execution backend:

* **batch** — cases that share a network, policy, information model and
  integration method are fused into one vectorized
  :class:`~repro.batch.BatchSimulator` integration (per-row update periods,
  horizons, resolutions and initial flows), which is the fast path for the
  paper's parameter sweeps;
* **processes** — heterogeneous cases (different networks or policies) can be
  fanned out over a ``multiprocessing`` pool;
* **serial** — the original one-case-at-a-time loop, always available as the
  reference backend.

``engine="auto"`` batches every multi-case group and runs the remainder
serially (or on a pool when ``processes > 1`` is requested).  Whatever the
backend, rows are emitted in the original case order and each case's
trajectory is identical to a scalar run, so results never depend on the
dispatch decision.
"""

from __future__ import annotations

import dataclasses
import multiprocessing
import os
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from ..analysis.sweeps import RowBuilder, SweepCase, SweepResult
from ..batch.engine import BatchConfig, BatchSimulator
from ..core.simulator import simulate
from ..core.trajectory import Trajectory
from ..wardrop.flow import FlowVector
from .plan import ExperimentPlan

GroupKey = Tuple[int, int, bool, str]


def group_key(case: SweepCase) -> GroupKey:
    """Return the batch-compatibility key of a case.

    Cases batch together when they share the same network and policy objects,
    the same information model (stale vs fresh) and the same integration
    method; update period, horizon, steps-per-phase and initial flow may vary
    per row.
    """
    return (id(case.network), id(case.policy), case.stale, case.method)


def _simulate_case(case: SweepCase) -> Trajectory:
    """Run one case through the scalar simulator (also the pool worker)."""
    return simulate(
        case.network,
        case.policy,
        update_period=case.update_period,
        horizon=case.horizon,
        initial_flow=case.initial_flow,
        stale=case.stale,
        steps_per_phase=case.steps_per_phase,
        method=case.method,
    )


def _run_batch_group(cases: Sequence[SweepCase]) -> List[Trajectory]:
    """Run one compatible group as a single batched integration."""
    first = cases[0]
    network = first.network
    config = BatchConfig(
        update_periods=np.array([case.update_period for case in cases], dtype=float),
        horizons=np.array([case.horizon for case in cases], dtype=float),
        steps_per_phase=np.array([case.steps_per_phase for case in cases], dtype=int),
        method=first.method,
        stale=first.stale,
    )
    initial_flows = [
        case.initial_flow if case.initial_flow is not None else FlowVector.uniform(network)
        for case in cases
    ]
    result = BatchSimulator(network, first.policy, config).run(initial_flows)
    return [result.trajectory(row) for row in range(len(cases))]


def _run_pool(cases: Sequence[SweepCase], processes: int) -> List[Trajectory]:
    """Run cases on a worker pool, preserving order; falls back to serial."""
    if processes <= 1 or len(cases) <= 1:
        return [_simulate_case(case) for case in cases]
    try:
        # Prefer fork (cheap, shares the loaded modules); fall back to the
        # platform default (spawn on Windows/macOS) where fork is missing.
        context = multiprocessing.get_context("fork")
    except ValueError:
        context = multiprocessing.get_context()
    with context.Pool(min(processes, len(cases))) as pool:
        return pool.map(_simulate_case, cases)


def _dispatch(
    cases: List[SweepCase], engine: str, processes: Optional[int]
) -> List[Trajectory]:
    """Return one trajectory per case, in case order."""
    if engine == "serial":
        return [_simulate_case(case) for case in cases]
    if engine == "processes":
        return _run_pool(cases, processes or os.cpu_count() or 1)
    if engine not in ("auto", "batch"):
        raise ValueError(
            f"unknown engine {engine!r}; use 'auto', 'batch', 'processes' or 'serial'"
        )

    groups: Dict[GroupKey, List[int]] = {}
    for index, case in enumerate(cases):
        groups.setdefault(group_key(case), []).append(index)

    trajectories: List[Optional[Trajectory]] = [None] * len(cases)
    leftovers: List[int] = []
    for indices in groups.values():
        if engine == "batch" or len(indices) > 1:
            for index, trajectory in zip(
                indices, _run_batch_group([cases[i] for i in indices])
            ):
                trajectories[index] = trajectory
        else:
            leftovers.extend(indices)
    if leftovers:
        leftovers.sort()
        if processes and processes > 1:
            results = _run_pool([cases[i] for i in leftovers], processes)
        else:
            results = [_simulate_case(cases[i]) for i in leftovers]
        for index, trajectory in zip(leftovers, results):
            trajectories[index] = trajectory
    return trajectories  # type: ignore[return-value]


def run_cases(
    cases: List[SweepCase],
    row_builder: RowBuilder,
    engine: str = "auto",
    processes: Optional[int] = None,
) -> SweepResult:
    """Execute cases on the selected backend and collect the result rows.

    ``row_builder(trajectory)`` may return a single mapping or a list of
    mappings (e.g. one row per evaluation target); every returned row is
    merged over the case's echoed ``parameters``.
    """
    cases = list(cases)
    trajectories = _dispatch(cases, engine, processes)
    result = SweepResult()
    for case, trajectory in zip(cases, trajectories):
        built = row_builder(trajectory)
        rows = built if isinstance(built, (list, tuple)) else [built]
        for row in rows:
            merged: Dict[str, object] = dict(case.parameters)
            merged.update(row)
            result.append(merged)
    return result


def run_plan(
    plan: ExperimentPlan,
    row_builder: RowBuilder,
    engine: str = "auto",
    processes: Optional[int] = None,
    csv_path=None,
    jsonl_path=None,
    include_seed: bool = False,
) -> SweepResult:
    """Run a whole experiment plan and optionally persist the result rows.

    ``include_seed`` adds each case's deterministic seed as a ``seed`` column
    (rows produced by a multi-row builder share their case's seed).
    """
    if include_seed:
        cases = [
            dataclasses.replace(case, parameters={**case.parameters, "seed": seed})
            for case, seed in zip(plan.cases, plan.seeds)
        ]
    else:
        cases = plan.cases
    result = run_cases(cases, row_builder, engine=engine, processes=processes)
    if csv_path is not None:
        result.to_csv(csv_path)
    if jsonl_path is not None:
        result.to_jsonl(jsonl_path)
    return result
