"""Unit tests for best-response dynamics and the paper's closed-form bounds."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core import (
    best_reply_target,
    max_update_period_for_latency,
    oscillation_amplitude,
    oscillation_fixed_point,
    proportional_convergence_bound,
    simulate_best_response,
    theorem_update_period,
    two_link_best_response_flow,
    uniform_convergence_bound,
)
from repro.instances import (
    braess_network,
    identical_linear_links,
    oscillation_initial_flow,
    two_link_network,
)
from repro.wardrop import FlowVector, equilibrium_violation


class TestBestReplyTarget:
    def test_routes_all_demand_to_cheapest(self, pigou):
        latencies = np.array([1.0, 0.3])
        target = best_reply_target(pigou, latencies)
        assert target[1] == pytest.approx(1.0)

    def test_splits_ties_evenly(self, two_links):
        latencies = np.array([0.4, 0.4])
        target = best_reply_target(two_links, latencies)
        assert target == pytest.approx([0.5, 0.5])


class TestBestResponseDynamics:
    def test_converges_with_fresh_information(self):
        network = two_link_network(beta=1.0)
        trajectory = simulate_best_response(
            network,
            update_period=0.01,
            horizon=10.0,
            initial_flow=FlowVector(network, [0.9, 0.1]),
            stale=False,
        )
        assert equilibrium_violation(trajectory.final_flow) < 1e-2

    def test_oscillates_from_paper_initial_condition(self):
        period = 0.5
        network = two_link_network(beta=2.0)
        start = oscillation_initial_flow(network, period)
        trajectory = simulate_best_response(
            network, update_period=period, horizon=20.0, initial_flow=start
        )
        starts = np.array([flow.values()[0] for flow in trajectory.phase_start_flows()])
        # Period-2 cycle: every other phase start returns to the same share.
        assert np.allclose(starts[0::2], starts[0], atol=1e-9)
        assert np.allclose(starts[1::2], starts[1], atol=1e-9)
        assert abs(starts[0] - starts[1]) > 0.1

    def test_closed_form_matches_simulation(self):
        period = 0.3
        network = two_link_network(beta=1.0)
        start_share = 0.8
        trajectory = simulate_best_response(
            network,
            update_period=period,
            horizon=3.0,
            initial_flow=FlowVector(network, [start_share, 1 - start_share]),
            samples_per_phase=1,
        )
        for phase in trajectory.phases:
            expected = two_link_best_response_flow(start_share, period, phase.end_time)
            assert phase.end_flow.values()[0] == pytest.approx(expected, abs=1e-9)

    def test_converges_on_asymmetric_parallel_links(self):
        # With fresh info best response converges even on multi-link instances.
        network = identical_linear_links(4)
        trajectory = simulate_best_response(
            network, update_period=0.01, horizon=15.0, stale=False
        )
        assert equilibrium_violation(trajectory.final_flow) < 5e-2

    def test_rejects_bad_arguments(self, two_links):
        with pytest.raises(ValueError):
            simulate_best_response(two_links, update_period=0.0, horizon=1.0)


class TestClosedFormTwoLinkSolution:
    def test_fixed_point_is_2T_periodic(self):
        period = 0.7
        start = oscillation_fixed_point(period)
        after_two = two_link_best_response_flow(start, period, 2 * period)
        assert after_two == pytest.approx(start, abs=1e-12)

    def test_equilibrium_is_stationary(self):
        assert two_link_best_response_flow(0.5, 0.3, 10.0) == pytest.approx(0.5)

    def test_input_validation(self):
        with pytest.raises(ValueError):
            two_link_best_response_flow(0.6, 0.0, 1.0)
        with pytest.raises(ValueError):
            two_link_best_response_flow(1.5, 0.1, 1.0)
        with pytest.raises(ValueError):
            two_link_best_response_flow(0.5, 0.1, -1.0)


class TestOscillationBounds:
    def test_amplitude_formula(self):
        beta, period = 4.0, 0.5
        decayed = math.exp(-period)
        expected = beta * (1 - decayed) / (2 * decayed + 2)
        assert oscillation_amplitude(beta, period) == pytest.approx(expected)

    def test_amplitude_scales_linearly_with_beta(self):
        assert oscillation_amplitude(8.0, 0.3) == pytest.approx(2 * oscillation_amplitude(4.0, 0.3))

    def test_amplitude_increases_with_period(self):
        assert oscillation_amplitude(1.0, 0.8) > oscillation_amplitude(1.0, 0.2)

    def test_max_period_inverts_amplitude(self):
        beta, eps = 4.0, 0.1
        period = max_update_period_for_latency(beta, eps)
        assert oscillation_amplitude(beta, period) == pytest.approx(eps, rel=1e-9)

    def test_max_period_is_order_eps_over_beta(self):
        # For small eps/beta, ln((1+x)/(1-x)) ~ 2x, so T ~ 4 eps / beta.
        beta, eps = 10.0, 0.01
        assert max_update_period_for_latency(beta, eps) == pytest.approx(4 * eps / beta, rel=1e-2)

    def test_degenerate_cases(self):
        assert max_update_period_for_latency(0.0, 0.1) == float("inf")
        assert max_update_period_for_latency(1.0, 0.6) == float("inf")
        assert max_update_period_for_latency(1.0, 0.0) == 0.0

    def test_invalid_arguments(self):
        with pytest.raises(ValueError):
            oscillation_amplitude(-1.0, 0.1)
        with pytest.raises(ValueError):
            oscillation_amplitude(1.0, 0.0)
        with pytest.raises(ValueError):
            oscillation_fixed_point(0.0)


class TestConvergenceTimeBounds:
    def test_uniform_bound_scales_with_paths(self):
        small = identical_linear_links(2)
        large = identical_linear_links(8)
        args = dict(update_period=0.1, delta=0.1, epsilon=0.1)
        assert uniform_convergence_bound(large, **args) > uniform_convergence_bound(small, **args)

    def test_proportional_bound_independent_of_paths(self):
        small = identical_linear_links(2)
        large = identical_linear_links(8)
        args = dict(update_period=0.1, delta=0.1, epsilon=0.1)
        assert proportional_convergence_bound(large, **args) == pytest.approx(
            proportional_convergence_bound(small, **args)
        )

    def test_bounds_scale_inverse_delta_squared(self):
        network = identical_linear_links(4)
        loose = proportional_convergence_bound(network, 0.1, delta=0.2, epsilon=0.1)
        tight = proportional_convergence_bound(network, 0.1, delta=0.1, epsilon=0.1)
        assert tight == pytest.approx(4 * loose)

    def test_theorem_update_period_capped_at_one(self):
        network = two_link_network(beta=1e-3)
        assert theorem_update_period(network, alpha=1e-3) == 1.0

    def test_invalid_arguments(self):
        network = identical_linear_links(2)
        with pytest.raises(ValueError):
            uniform_convergence_bound(network, 0.0, 0.1, 0.1)
        with pytest.raises(ValueError):
            proportional_convergence_bound(network, 0.1, -0.1, 0.1)
        with pytest.raises(ValueError):
            proportional_convergence_bound(network, 0.1, 0.1, 2.0)
