"""Ablations of the reproduction's own design choices (DESIGN.md section 4).

Three checks that the results reported in EXPERIMENTS.md are not artefacts of
simulation choices:

* **Integrator**: Euler vs RK4 and coarse vs fine step sizes must agree on
  the trajectory (the dynamics is smooth within a phase), and the Lemma 3
  identity residual must shrink with the step size.
* **Migration cap**: the paper's alpha-smooth condition is an upper bound;
  capping the migration probability at 1 must not change the trajectory as
  long as ``alpha * l_max <= 1`` (the cap never binds).
* **Board refresh alignment**: refreshing the board at the phase start (the
  paper's model) vs simulating with twice as many half-length phases (an
  effectively fresher board) must not make convergence worse -- staleness only
  hurts.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import phase_potential_stats, print_table
from repro.core import scaled_policy, simulate, uniform_policy
from repro.instances import braess_network, lopsided_flow, two_link_network
from repro.solvers import optimal_potential
from repro.wardrop import FlowVector, potential


@pytest.mark.experiment("ablation")
def test_integrator_choice_does_not_change_results(report_header):
    network = braess_network()
    policy = uniform_policy(network)
    period = policy.safe_update_period(network)
    start = FlowVector.single_path(network, {0: 0})
    rows = []
    finals = {}
    for method in ["euler", "rk4"]:
        for steps in [10, 50, 200]:
            trajectory = simulate(
                network, policy, update_period=period, horizon=100 * period,
                initial_flow=start, steps_per_phase=steps, method=method,
            )
            stats = phase_potential_stats(trajectory)
            finals[(method, steps)] = trajectory.final_flow.values()
            rows.append(
                {
                    "method": method,
                    "steps/phase": steps,
                    "final_potential": potential(trajectory.final_flow),
                    "identity_residual": stats.max_identity_residual,
                    "lemma4_violations": stats.lemma4_violations,
                }
            )
    print_table(rows, title="Ablation: integrator method and step size")
    reference = finals[("rk4", 200)]
    for key, values in finals.items():
        assert np.allclose(values, reference, atol=5e-3), key
    # Finer steps must not make the Lemma 3 residual worse.
    euler_coarse = next(r for r in rows if r["method"] == "euler" and r["steps/phase"] == 10)
    euler_fine = next(r for r in rows if r["method"] == "euler" and r["steps/phase"] == 200)
    assert euler_fine["identity_residual"] <= euler_coarse["identity_residual"] + 1e-12


@pytest.mark.experiment("ablation")
def test_migration_cap_never_binds_for_smooth_settings(report_header):
    # alpha chosen so alpha * l_max = 0.5 < 1: capping at 1 is a no-op and the
    # capped and uncapped rules produce identical trajectories.
    network = two_link_network(beta=4.0)
    alpha = 0.5 / network.max_latency()
    policy = scaled_policy(alpha)
    period = 0.1
    start = lopsided_flow(network, 0.9)
    trajectory = simulate(
        network, policy, update_period=period, horizon=20.0, initial_flow=start
    )
    # Largest migration probability actually used along the run.
    largest = 0.0
    for phase in trajectory.phases:
        latencies = phase.start_flow.path_latencies()
        gap = float(latencies.max() - latencies.min())
        largest = max(largest, alpha * gap)
    rows = [{
        "alpha": alpha,
        "alpha*l_max": alpha * network.max_latency(),
        "max migration probability used": largest,
        "cap binds": largest >= 1.0,
    }]
    print_table(rows, title="Ablation: the min(1, .) cap never binds when alpha*l_max <= 1")
    assert largest < 1.0


@pytest.mark.experiment("ablation")
def test_fresher_board_is_never_worse(report_header):
    # Halving the update period (double refresh rate) must not slow down
    # convergence measured at equal wall-clock times.
    network = two_link_network(beta=8.0)
    policy = uniform_policy(network)
    optimum = optimal_potential(network)
    start = lopsided_flow(network, 0.95)
    base_period = policy.safe_update_period(network)
    rows = []
    gaps = {}
    for factor in [1.0, 0.5, 0.25]:
        trajectory = simulate(
            network, policy, update_period=base_period * factor, horizon=20.0,
            initial_flow=start,
        )
        gap = potential(trajectory.final_flow) - optimum
        gaps[factor] = gap
        rows.append({"T/T*": factor, "final_gap": gap})
    print_table(rows, title="Ablation: refreshing the board more often never hurts")
    assert gaps[0.25] <= gaps[1.0] + 1e-9


@pytest.mark.experiment("ablation")
def test_benchmark_integration_cost(benchmark, report_header):
    network = braess_network()
    policy = uniform_policy(network)
    period = policy.safe_update_period(network)

    def run():
        return simulate(
            network, policy, update_period=period, horizon=30 * period,
            initial_flow=FlowVector.single_path(network, {0: 0}), steps_per_phase=50,
        )

    trajectory = benchmark(run)
    assert len(trajectory.phases) == 30
