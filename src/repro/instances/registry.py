"""A registry of named instances used by examples, benchmarks and tests.

``get_instance(name)`` builds a fresh network for a registered name; the
registry keeps the benchmark harness declarative (each bench names the
instances it sweeps instead of re-implementing constructors).
"""

from __future__ import annotations

from typing import Callable, Dict, List

from ..wardrop.network import WardropNetwork
from .braess import braess_network
from .city import synthetic_city_network
from .grids import grid_network
from .parallel_links import heterogeneous_affine_links, identical_linear_links, pigou_like_links
from .pigou import pigou_network
from .random_networks import random_layered_network
from .tntp import load_tntp_instance, sioux_falls_network
from .two_links import two_link_network

InstanceFactory = Callable[[], WardropNetwork]

_REGISTRY: Dict[str, InstanceFactory] = {
    "two-links": lambda: two_link_network(beta=1.0),
    "two-links-steep": lambda: two_link_network(beta=8.0),
    "pigou-linear": lambda: pigou_network(degree=1),
    "pigou-quadratic": lambda: pigou_network(degree=2),
    "braess": lambda: braess_network(with_shortcut=True),
    "braess-no-shortcut": lambda: braess_network(with_shortcut=False),
    "parallel-4": lambda: identical_linear_links(4),
    "parallel-8-affine": lambda: heterogeneous_affine_links(8, seed=7),
    "parallel-16-affine": lambda: heterogeneous_affine_links(16, seed=7),
    "pigou-like-6": lambda: pigou_like_links(6, degree=2),
    "grid-3x3": lambda: grid_network(3, 3, num_commodities=1, seed=3),
    "grid-3x3-2c": lambda: grid_network(3, 3, num_commodities=2, seed=3),
    "random-layered": lambda: random_layered_network(num_layers=3, width=3, seed=11),
    # Real road networks (TNTP fixtures): restricted path sets seeded with
    # free-flow shortest paths, meant to grow by column generation.
    "sioux-falls": sioux_falls_network,
    "sioux-falls-mini": lambda: sioux_falls_network(max_od_pairs=40),
    # Synthetic city: 16x16 street grid with arterial corridors, 960 directed
    # links -- the city-scale target of the batched column-generation driver.
    "city-grid": synthetic_city_network,
    "city-grid-mini": lambda: synthetic_city_network(
        blocks=4, arterial_every=2, od_pairs=4
    ),
}

# Anaheim-class TNTP file pairs load through a dynamic name instead of a
# registration: ``tntp:<net_path>,<trips_path>``.  The separator is a comma
# because paths routinely contain colons on some platforms.
_TNTP_PREFIX = "tntp:"


def _load_dynamic_tntp(name: str) -> WardropNetwork:
    spec = name[len(_TNTP_PREFIX) :]
    parts = spec.split(",")
    if len(parts) != 2 or not parts[0].strip() or not parts[1].strip():
        raise KeyError(
            f"malformed TNTP instance name {name!r}; "
            "expected 'tntp:<net_path>,<trips_path>'"
        )
    net_path, trips_path = (part.strip() for part in parts)
    return load_tntp_instance(net_path, trips_path, name=name)


def register_instance(name: str, factory: InstanceFactory, overwrite: bool = False) -> None:
    """Register a new named instance factory.

    Raises ``ValueError`` if the name is already taken and ``overwrite`` is
    not set.
    """
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"instance {name!r} is already registered")
    _REGISTRY[name] = factory


def get_instance(name: str) -> WardropNetwork:
    """Build and return the registered instance ``name``.

    Besides registered names, ``tntp:<net_path>,<trips_path>`` loads an
    arbitrary TNTP file pair (Anaheim-class networks that are too large to
    bundle) through :func:`repro.instances.tntp.load_tntp_instance`.
    """
    if name.startswith(_TNTP_PREFIX):
        return _load_dynamic_tntp(name)
    try:
        factory = _REGISTRY[name]
    except KeyError as error:
        raise KeyError(
            f"unknown instance {name!r}; available: {', '.join(sorted(_REGISTRY))} "
            "(or 'tntp:<net_path>,<trips_path>' for an external TNTP pair)"
        ) from error
    network = factory()
    # Stamp the registry name so engine_run spans, ledger fingerprints and
    # network reports can identify the instance (TNTP loaders set their own).
    network.graph.graph.setdefault("name", name)
    return network


def available_instances() -> List[str]:
    """Return the sorted list of registered instance names."""
    return sorted(_REGISTRY)
