"""Large-network scenario layer: sparse evaluation and column generation.

The modules in this package let the stale-information dynamics run on
networks where exhaustively enumerating the path sets is impossible:

* :mod:`~repro.largescale.incidence` -- the edge--path incidence matrix as a
  first-class object with interchangeable dense and sparse (CSR) backends,
  so latency evaluation, the Beckmann potential and duality gaps cost
  ``O(nnz)`` instead of ``O(E * P)`` on big instances,
* :mod:`~repro.largescale.shortest` -- a Dijkstra shortest-path oracle over
  the *full* graph (first-thru-node aware) plus the all-or-nothing loader
  that classical traffic assignment is built on,
* :mod:`~repro.largescale.columns` -- :class:`ActivePathSet`, a restricted
  path set that grows by shortest-path column generation at bulletin-board
  refreshes (matching the paper's information model: agents can only
  discover routes when the board updates), and the column-generation
  simulator driving the rerouting dynamics on it,
* :mod:`~repro.largescale.batch_columns` -- the batched driver running B
  same-topology column-generation replicas as one padded ``(B, P)``
  ensemble against a shared oracle (union growth, per-row eviction and
  per-row duality-gap certificates).

The TNTP instance loader lives in :mod:`repro.instances.tntp` and the
edge-flow Frank--Wolfe solver in :mod:`repro.solvers.edge_frank_wolfe`;
both build on the oracle and incidence layers here.

Attribute access is lazy (PEP 562): ``repro.wardrop.network`` imports the
incidence backends from here, and resolving the column-generation names
eagerly would close an import cycle back through ``repro.wardrop``.
"""

from __future__ import annotations

_EXPORTS = {
    "ActivePathSet": "columns",
    "ColumnGenerationResult": "columns",
    "simulate_with_column_generation": "columns",
    "BatchColumnGenerationResult": "batch_columns",
    "simulate_with_column_generation_batch": "batch_columns",
    "DenseIncidence": "incidence",
    "EdgeIncidence": "incidence",
    "SparseIncidence": "incidence",
    "build_incidence": "incidence",
    "have_scipy": "incidence",
    "ShortestPathOracle": "shortest",
    "AllOrNothingLoad": "shortest",
}

__all__ = sorted(_EXPORTS)


def __getattr__(name: str):
    try:
        module_name = _EXPORTS[name]
    except KeyError:
        raise AttributeError(f"module {__name__!r} has no attribute {name!r}") from None
    from importlib import import_module

    return getattr(import_module(f".{module_name}", __name__), name)


def __dir__():
    return __all__
