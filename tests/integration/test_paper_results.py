"""Integration tests reproducing the paper's main claims end to end.

Each test corresponds to a theorem or worked example of the paper and runs
the full stack (instance -> policy -> bulletin board -> simulator -> analysis)
rather than a single module.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    analyse_oscillation,
    count_bad_phases,
    phase_potential_stats,
    phase_start_latency_trace,
)
from repro.core import (
    better_response_policy,
    oscillation_amplitude,
    replicator_policy,
    scaled_policy,
    simulate,
    simulate_best_response,
    uniform_policy,
)
from repro.instances import (
    braess_network,
    heterogeneous_affine_links,
    lopsided_flow,
    oscillation_initial_flow,
    pigou_network,
    two_link_network,
)
from repro.solvers import optimal_potential, solve_wardrop_equilibrium
from repro.wardrop import FlowVector, equilibrium_violation, potential


class TestSection32Oscillation:
    """The two-link best-response oscillation (Section 3.2)."""

    @pytest.mark.parametrize("beta", [1.0, 4.0])
    @pytest.mark.parametrize("period", [0.25, 0.5, 1.0])
    def test_amplitude_matches_closed_form(self, beta, period):
        network = two_link_network(beta=beta)
        trajectory = simulate_best_response(
            network, update_period=period, horizon=20 * period,
            initial_flow=oscillation_initial_flow(network, period),
        )
        measured = phase_start_latency_trace(trajectory)
        assert np.allclose(measured, oscillation_amplitude(beta, period), atol=1e-9)

    def test_oscillation_persists_for_small_periods(self):
        # The paper: no positive T avoids oscillation from the bad start.
        beta = 4.0
        network = two_link_network(beta=beta)
        for period in [0.5, 0.1, 0.02]:
            trajectory = simulate_best_response(
                network, update_period=period, horizon=60 * period,
                initial_flow=oscillation_initial_flow(network, period),
            )
            report = analyse_oscillation(trajectory)
            assert report.is_oscillating
            assert report.mean_phase_start_latency > 0.0

    def test_amplitude_shrinks_linearly_with_period(self):
        beta = 4.0
        network = two_link_network(beta=beta)
        amplitudes = []
        for period in [0.4, 0.2, 0.1]:
            trajectory = simulate_best_response(
                network, update_period=period, horizon=30 * period,
                initial_flow=oscillation_initial_flow(network, period),
            )
            amplitudes.append(float(phase_start_latency_trace(trajectory).mean()))
        # Halving T roughly halves the sustained latency (X ~ beta*T/4).
        assert amplitudes[1] == pytest.approx(amplitudes[0] / 2, rel=0.15)
        assert amplitudes[2] == pytest.approx(amplitudes[1] / 2, rel=0.15)


class TestTheorem2FreshInformation:
    """Convergence of every smooth policy under up-to-date information."""

    @pytest.mark.parametrize("make_policy", [uniform_policy, replicator_policy])
    def test_converges_on_pigou(self, make_policy):
        network = pigou_network(degree=2)
        policy = make_policy(network)
        trajectory = simulate(
            network, policy, update_period=0.05, horizon=80.0,
            initial_flow=FlowVector(network, [0.9, 0.1]), stale=False,
        )
        # Convergence is asymptotic (latency differences vanish near the
        # equilibrium), so allow a small residual violation.
        assert equilibrium_violation(trajectory.final_flow) < 5e-2

    def test_potential_never_increases(self):
        network = braess_network()
        policy = uniform_policy(network)
        trajectory = simulate(
            network, policy, update_period=0.05, horizon=20.0,
            initial_flow=FlowVector.single_path(network, {0: 0}), stale=False,
        )
        trace = trajectory.potential_trace()
        assert np.all(np.diff(trace) <= 1e-9)


class TestLemma4Corollary5StaleConvergence:
    """Convergence under stale information with the safe update period."""

    @pytest.mark.parametrize("instance_builder", [
        lambda: two_link_network(beta=8.0),
        braess_network,
        lambda: heterogeneous_affine_links(6, seed=1),
    ])
    def test_smooth_policy_converges_and_lemma4_holds(self, instance_builder):
        network = instance_builder()
        policy = uniform_policy(network)
        period = policy.safe_update_period(network)
        trajectory = simulate(
            network, policy, update_period=period, horizon=min(60.0, 600 * period),
            initial_flow=FlowVector.single_path(network, {0: 0}),
        )
        stats = phase_potential_stats(trajectory)
        assert stats.lemma4_violations == 0
        assert stats.max_potential_increase <= 1e-10
        optimum = optimal_potential(network)
        assert potential(trajectory.final_flow) - optimum < 0.05

    def test_aggressive_policy_with_long_period_fails_to_settle(self):
        # Violate the smoothness condition by a factor ~100: a steep two-link
        # instance with an aggressive migration rate and a long update period
        # keeps oscillating instead of converging.
        network = two_link_network(beta=8.0)
        safe_alpha = 1.0 / (4.0 * 1 * 8.0 * 0.5)  # alpha safe for T=0.5
        aggressive = scaled_policy(alpha=100.0 * safe_alpha)
        trajectory = simulate(
            network, aggressive, update_period=0.5, horizon=40.0,
            initial_flow=lopsided_flow(network, 0.9),
        )
        report = analyse_oscillation(trajectory)
        careful = scaled_policy(alpha=safe_alpha)
        careful_trajectory = simulate(
            network, careful, update_period=0.5, horizon=40.0,
            initial_flow=lopsided_flow(network, 0.9),
        )
        careful_report = analyse_oscillation(careful_trajectory)
        assert report.amplitude > 10 * careful_report.amplitude

    def test_better_response_policy_oscillates_under_staleness(self):
        network = two_link_network(beta=8.0)
        policy = better_response_policy()
        trajectory = simulate(
            network, policy, update_period=0.5, horizon=40.0,
            initial_flow=lopsided_flow(network, 0.9),
        )
        assert analyse_oscillation(trajectory).is_oscillating


class TestTheorems6And7ConvergenceTime:
    """Qualitative shape of the convergence-time bounds."""

    def test_bad_phases_finite_and_bound_respected(self):
        network = heterogeneous_affine_links(4, seed=5)
        delta, epsilon = 0.1, 0.1
        for make_policy in [uniform_policy, replicator_policy]:
            policy = make_policy(network)
            period = min(policy.safe_update_period(network), 1.0)
            trajectory = simulate(
                network, policy, update_period=period, horizon=80.0,
                initial_flow=FlowVector.single_path(network, {0: 0}),
            )
            summary = count_bad_phases(trajectory, delta, epsilon)
            assert summary.bad_phases < summary.total_phases
            # Once converged it stays converged (no recurring bad phases).
            assert summary.last_bad_phase <= summary.bad_phases + 1

    def test_proportional_beats_uniform_with_many_paths(self):
        network = heterogeneous_affine_links(16, seed=7)
        delta, epsilon = 0.1, 0.1
        results = {}
        for name, make_policy in [("uniform", uniform_policy), ("replicator", replicator_policy)]:
            policy = make_policy(network)
            period = min(policy.safe_update_period(network), 1.0)
            trajectory = simulate(
                network, policy, update_period=period, horizon=120.0,
                initial_flow=FlowVector.single_path(network, {0: 0}),
            )
            results[name] = count_bad_phases(trajectory, delta, epsilon).weak_bad_phases
        # Theorem 7's bound has no |P| factor; with 16 paths the replicator
        # needs no more bad phases than uniform sampling.
        assert results["replicator"] <= results["uniform"]


class TestDynamicsAgainstGroundTruth:
    def test_final_flow_matches_frank_wolfe(self):
        network = pigou_network(degree=1)
        policy = replicator_policy(network)
        period = policy.safe_update_period(network)
        trajectory = simulate(
            network, policy, update_period=period, horizon=200 * period,
            initial_flow=FlowVector(network, [0.7, 0.3]),
        )
        reference = solve_wardrop_equilibrium(network).flow
        # Both should put (essentially) all flow on the variable link.
        assert trajectory.final_flow.values()[1] == pytest.approx(
            reference.values()[1], abs=0.05
        )
