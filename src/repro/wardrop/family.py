"""Families of Wardrop networks sharing one topology.

The paper's headline sweeps run the same dynamics over *families* of
instances -- Pigou, Braess or parallel-link networks whose latency
coefficients vary while the graph, path sets and commodities stay fixed.  A
:class:`NetworkFamily` stacks ``B`` such networks so the batched simulation
engine can integrate one replica per member as a single ``(B, P)`` ensemble:
geometry (edge/path incidence, projections) is shared through the base
network, while latency evaluation uses per-edge
:class:`~repro.wardrop.latency.LatencyStack` objects that apply each
member's coefficients to its own row.

``topology_signature`` is the grouping key used by the experiment runner:
cases whose networks share a signature can always be fused into one family
batch (the constructor re-validates, so a signature collision can never
produce silently wrong results).
"""

from __future__ import annotations

from typing import Callable, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from .latency import LatencyStack
from .network import WardropNetwork


def topology_signature(network: WardropNetwork) -> Tuple:
    """Return a hashable key identifying a network's batching class.

    Two networks with equal signatures have identical node/edge structure,
    path sets and commodities (sources, sinks and demands) and therefore
    identical incidence matrices -- only their latency functions may differ,
    which is exactly the degree of freedom :class:`NetworkFamily` stacks.
    """
    return (
        tuple(network.paths.describe()),
        tuple(network.edges),
        tuple(
            (commodity.source, commodity.sink, float(commodity.demand))
            for commodity in network.commodities
        ),
    )


class NetworkFamily:
    """``B`` same-topology networks with stacked latency coefficients.

    Parameters
    ----------
    networks:
        The family members.  All must share the topology of the first
        (validated via :func:`topology_signature` and the incidence matrix);
        latency functions may differ per member.
    validate:
        Set to ``False`` to skip the ``O(paths)`` topology check when the
        members are same-structure by construction -- e.g. the
        :meth:`~repro.wardrop.network.WardropNetwork.with_latencies` clones
        the scenario layer stacks every phase, which share the base network's
        path-set and incidence objects outright.
    stacks:
        Internal: prebuilt per-edge :class:`LatencyStack` objects, one per
        ``base.edges`` entry, built from exactly the members' latency
        functions in member order.  The scenario layer's
        :class:`~repro.scenarios.scenario.ScenarioEnsemble` passes memoised
        stacks here so per-phase family swaps reuse the stacks of edges whose
        functions did not change.

    The family exposes the same batched evaluation methods as a single
    :class:`WardropNetwork` (``edge_flows_batch``, ``edge_latencies_batch``,
    ``path_latencies_batch``, ...), with row ``b`` evaluated against member
    ``b``'s latency functions.  The optional ``rows`` argument restricts an
    evaluation to a subset of members -- the batched engine uses it so frozen
    (converged or horizon-exhausted) rows skip latency work.
    """

    def __init__(
        self,
        networks: Sequence[WardropNetwork],
        validate: bool = True,
        stacks: Optional[Sequence[LatencyStack]] = None,
    ):
        networks = list(networks)
        if not networks:
            raise ValueError("a network family needs at least one member")
        base = networks[0]
        if validate:
            signature = topology_signature(base)
            for index, network in enumerate(networks[1:], start=1):
                if topology_signature(network) != signature:
                    raise ValueError(
                        f"family member {index} has a different topology than member 0"
                    )
                if not np.array_equal(network.incidence, base.incidence):
                    raise ValueError(
                        f"family member {index} has a different incidence matrix than member 0"
                    )
        self.networks: List[WardropNetwork] = networks
        self.base = base
        if stacks is not None:
            stacks = list(stacks)
            if len(stacks) != len(base.edges):
                raise ValueError(
                    f"got {len(stacks)} prebuilt stacks for {len(base.edges)} edges"
                )
            self._stacks = stacks
        else:
            self._stacks = [
                LatencyStack([network.latency_function(edge) for network in networks])
                for edge in base.edges
            ]

    # Construction helpers -------------------------------------------------

    @classmethod
    def from_builder(
        cls,
        builder: Callable[..., WardropNetwork],
        parameter_grid: Sequence[Mapping[str, object]],
    ) -> "NetworkFamily":
        """Build a family by calling ``builder(**params)`` per grid entry.

        E.g. ``NetworkFamily.from_builder(pigou_network,
        [{"degree": 1, "constant": c} for c in constants])`` builds a Pigou
        coefficient sweep.
        """
        return cls([builder(**dict(params)) for params in parameter_grid])

    @classmethod
    def from_coefficients(
        cls,
        instance: WardropNetwork,
        grid: Sequence[Mapping[object, object]],
    ) -> "NetworkFamily":
        """Synthesise a family from one instance and a coefficient grid.

        ``grid`` holds one mapping per member, each sending edges (triples
        ``(u, v, key)`` or integer positions into ``instance.edges``) to the
        member's replacement
        :class:`~repro.wardrop.latency.LatencyFunction`; edges a member does
        not mention keep the instance's function.  Members are lightweight
        :meth:`~repro.wardrop.network.WardropNetwork.with_latencies` copies
        sharing the instance's graph, path set and incidence matrix, so --
        unlike :meth:`from_builder` -- no ``networkx`` graph is built and no
        path enumeration runs per member: family setup is O(edges) per row
        instead of O(graph).  The resulting :class:`LatencyStack` per edge is
        identical to the one a graph-built family of the same coefficients
        would produce.
        """
        if not grid:
            raise ValueError("a coefficient grid needs at least one entry")
        return cls([instance.with_latencies(overrides) for overrides in grid])

    @classmethod
    def replicate(cls, network: WardropNetwork, count: int) -> "NetworkFamily":
        """Return a family of ``count`` references to one shared network."""
        if count < 1:
            raise ValueError("a family needs at least one member")
        return cls([network] * count)

    # Structure ------------------------------------------------------------

    @property
    def size(self) -> int:
        return len(self.networks)

    def __len__(self) -> int:
        return self.size

    def member(self, row: int) -> WardropNetwork:
        """Return family member ``row``'s network."""
        return self.networks[row]

    @property
    def num_paths(self) -> int:
        return self.base.num_paths

    @property
    def num_edges(self) -> int:
        return self.base.num_edges

    @property
    def num_commodities(self) -> int:
        return self.base.num_commodities

    @property
    def incidence(self) -> np.ndarray:
        return self.base.incidence

    @property
    def vectorised(self) -> bool:
        """True if every edge's stack avoids the per-row Python loop."""
        return all(stack.vectorised for stack in self._stacks)

    # Theory constants over the family --------------------------------------

    def max_latency(self) -> float:
        """Return ``max_b l_max(network_b)``, a family-wide latency bound."""
        return max(network.max_latency() for network in self.networks)

    def max_slope(self) -> float:
        """Return ``max_b beta(network_b)``, a family-wide slope bound."""
        return max(network.max_slope() for network in self.networks)

    # Batched evaluation ----------------------------------------------------

    def edge_flows_batch(self, path_flows: np.ndarray) -> np.ndarray:
        """Aggregate ``(R, P)`` path flows to ``(R, E)`` edge flows (shared topology)."""
        return self.base.edge_flows_batch(path_flows)

    def edge_latencies_batch(
        self, edge_flows: np.ndarray, rows: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Evaluate members' edge latencies on ``(R, E)`` edge flows.

        Row ``i`` is evaluated with member ``rows[i]``'s latency functions
        (``rows`` defaults to ``0..B-1``, requiring ``R == B``).
        """
        edge_flows = np.asarray(edge_flows, dtype=float)
        result = np.empty_like(edge_flows)
        for index, stack in enumerate(self._stacks):
            result[:, index] = stack.values(edge_flows[:, index], rows)
        return result

    def path_latencies_batch(
        self, path_flows: np.ndarray, rows: Optional[np.ndarray] = None
    ) -> np.ndarray:
        """Return ``(R, P)`` path latencies of ``(R, P)`` flows, per member row."""
        edge_latencies = self.edge_latencies_batch(self.edge_flows_batch(path_flows), rows)
        return self.base.path_latencies_from_edge_latencies_batch(edge_latencies)

    def path_latencies_from_edge_latencies_batch(self, edge_latencies: np.ndarray) -> np.ndarray:
        """Return ``(R, P)`` path latencies from posted ``(R, E)`` edge latencies."""
        return self.base.path_latencies_from_edge_latencies_batch(edge_latencies)

    def __repr__(self) -> str:
        return (
            f"NetworkFamily(size={self.size}, paths={self.num_paths}, "
            f"edges={self.num_edges}, vectorised={self.vectorised})"
        )
