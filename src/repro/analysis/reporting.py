"""Plain-text table rendering for the benchmark harness.

The benchmarks print the same kind of rows a paper table would contain:
one row per parameter setting with a paper-predicted column next to the
measured column.  This module renders those rows as aligned monospace tables
so the benchmark output is readable in a terminal and in the captured
``bench_output.txt``.
"""

from __future__ import annotations

from typing import Iterable, List, Mapping, Optional, Sequence


def format_value(value: object, precision: int = 4) -> str:
    """Format one cell: floats compactly, everything else via ``str``."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value != value:  # NaN
            return "nan"
        if value == float("inf"):
            return "inf"
        if value == 0:
            return "0"
        if abs(value) >= 1e4 or abs(value) < 1e-3:
            return f"{value:.{precision}g}"
        return f"{value:.{precision}g}"
    return str(value)


def render_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    precision: int = 4,
) -> str:
    """Render a list of dict rows as an aligned plain-text table."""
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    table: List[List[str]] = [[str(column) for column in columns]]
    for row in rows:
        table.append([format_value(row.get(column, ""), precision) for column in columns])
    widths = [max(len(line[i]) for line in table) for i in range(len(columns))]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(cell.ljust(width) for cell, width in zip(table[0], widths))
    lines.append(header)
    lines.append("  ".join("-" * width for width in widths))
    for line in table[1:]:
        lines.append("  ".join(cell.ljust(width) for cell, width in zip(line, widths)))
    return "\n".join(lines)


def print_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
    precision: int = 4,
) -> None:
    """Print a table (see :func:`render_table`) followed by a blank line."""
    print(render_table(rows, columns=columns, title=title, precision=precision))
    print()


def render_comparison(
    label: str, predicted: float, measured: float, note: str = ""
) -> str:
    """Render one 'paper vs measured' line used in EXPERIMENTS.md extracts."""
    ratio = measured / predicted if predicted not in (0.0, float("inf")) else float("nan")
    text = f"{label}: predicted={format_value(predicted)}, measured={format_value(measured)}"
    if ratio == ratio:  # not NaN
        text += f", measured/predicted={format_value(ratio)}"
    if note:
        text += f"  ({note})"
    return text
