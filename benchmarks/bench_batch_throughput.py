"""E8 -- throughput of the batched engine vs. the scalar simulation loop.

The batched engine integrates a whole ensemble of replicas as one stacked
``(B, P)`` array, so a 64-case sweep costs one vectorized integration loop
instead of 64 Python-level simulations.  This benchmark measures cases per
second both ways on the same 64-case same-network sweep (replicator policy,
random starting flows, two nearby update periods) and asserts the batched
path is at least 5x faster; in practice the gap is more than an order of
magnitude.

The scalar baseline is timed on an 8-case subsample to keep the benchmark
quick: every case has the same horizon, resolution and nearly the same
period, hence the same per-case cost, so the subsample rate is an unbiased
estimate of the full scalar rate.
"""

from __future__ import annotations

import time

import numpy as np
import pytest

from repro.analysis import print_table
from repro.batch import simulate_batch
from repro.core import replicator_policy, simulate
from repro.instances import two_link_network
from repro.wardrop import FlowVector

NUM_CASES = 64
SCALAR_SAMPLE = 8
PERIODS = [0.08, 0.1]
HORIZON = 2.0
STEPS_PER_PHASE = 20


def build_sweep(network):
    """Return the 64 (initial flow, update period) configurations."""
    rng = np.random.default_rng(42)
    starts = [FlowVector.random(network, rng) for _ in range(NUM_CASES)]
    periods = [PERIODS[i % len(PERIODS)] for i in range(NUM_CASES)]
    return starts, periods


@pytest.mark.experiment("E8")
def test_batch_vs_scalar_throughput(report_header):
    network = two_link_network(beta=4.0)
    policy = replicator_policy(network)
    starts, periods = build_sweep(network)

    begin = time.perf_counter()
    scalar_final = []
    for start, period in zip(starts[:SCALAR_SAMPLE], periods[:SCALAR_SAMPLE]):
        trajectory = simulate(
            network, policy, update_period=period, horizon=HORIZON,
            initial_flow=start, steps_per_phase=STEPS_PER_PHASE,
        )
        scalar_final.append(trajectory.final_flow.values())
    scalar_seconds = time.perf_counter() - begin
    scalar_rate = SCALAR_SAMPLE / scalar_seconds

    begin = time.perf_counter()
    result = simulate_batch(
        network, policy, periods, HORIZON,
        initial_flows=starts, steps_per_phase=STEPS_PER_PHASE,
    )
    batch_seconds = time.perf_counter() - begin
    batch_rate = NUM_CASES / batch_seconds

    speedup = batch_rate / scalar_rate
    print_table(
        [
            {
                "engine": "scalar loop",
                "cases": SCALAR_SAMPLE,
                "seconds": scalar_seconds,
                "cases/sec": scalar_rate,
            },
            {
                "engine": "BatchSimulator",
                "cases": NUM_CASES,
                "seconds": batch_seconds,
                "cases/sec": batch_rate,
            },
            {"engine": "speedup", "cases/sec": speedup},
        ],
        title=f"E8: batched vs scalar throughput ({NUM_CASES}-case sweep, two links)",
    )

    # The batched rows must agree with the scalar runs they replace.
    final = result.final_flows()
    for row, scalar_values in enumerate(scalar_final):
        assert np.allclose(final[row], scalar_values, atol=1e-10)
    assert speedup >= 5.0, f"batched engine only {speedup:.1f}x faster"


@pytest.mark.experiment("E8")
def test_benchmark_batched_sweep(benchmark, report_header):
    network = two_link_network(beta=4.0)
    policy = replicator_policy(network)
    starts, periods = build_sweep(network)

    def run():
        return simulate_batch(
            network, policy, periods, HORIZON,
            initial_flows=starts, steps_per_phase=STEPS_PER_PHASE,
        )

    result = benchmark(run)
    assert result.batch_size == NUM_CASES
