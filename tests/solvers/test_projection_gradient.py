"""The path-based projection-gradient solver against Frank--Wolfe."""

import numpy as np
import pytest

from repro.instances import braess_network, grid_network, pigou_network
from repro.solvers import (
    solve_path_projection_gradient,
    solve_wardrop_equilibrium,
)
from repro.wardrop import FlowVector, is_wardrop_equilibrium, potential


@pytest.mark.parametrize(
    "factory",
    [
        braess_network,
        lambda: pigou_network(degree=2),
        lambda: grid_network(3, 3, num_commodities=2, seed=3),
    ],
)
def test_matches_the_frank_wolfe_equilibrium(factory):
    network = factory()
    fw = solve_wardrop_equilibrium(network, tolerance=1e-10)
    pg = solve_path_projection_gradient(network, tolerance=1e-8)
    assert pg.converged
    assert pg.method == "pg"
    # Path-flow equilibrium decompositions are not unique; the *edge* flows
    # and the Beckmann potential are, so those are what the solvers share.
    fw_edges = network.edge_flows(fw.flow.values())
    pg_edges = network.edge_flows(pg.flow.values())
    assert np.abs(fw_edges - pg_edges).max() < 1e-4
    assert pg.potential_value == pytest.approx(fw.potential_value, abs=1e-8)
    assert is_wardrop_equilibrium(pg.flow, tolerance=1e-3)


def test_newton_scaling_beats_frank_wolfe_iterations():
    # The per-commodity Newton scaling sidesteps the FW vertex zig-zag, so
    # at a tight tolerance the sweep count is far below the FW iteration
    # count on a congested multi-commodity instance.
    network = grid_network(3, 3, num_commodities=2, seed=3)
    fw = solve_wardrop_equilibrium(network, tolerance=1e-8)
    pg = solve_path_projection_gradient(network, tolerance=1e-8)
    assert pg.converged
    assert pg.iterations * 10 <= fw.iterations


def test_dispatch_through_the_path_solver():
    network = braess_network()
    result = solve_wardrop_equilibrium(network, tolerance=1e-8, method="pg")
    assert result.method == "pg"
    assert result.flow.max_used_latency() == pytest.approx(2.0, abs=1e-3)


def test_warm_start_is_honoured():
    network = pigou_network(degree=2)
    cold = solve_path_projection_gradient(network, tolerance=1e-8)
    warm = solve_path_projection_gradient(
        network, tolerance=1e-8, initial=cold.flow
    )
    # Started at the equilibrium: the very first gap check certifies it.
    assert warm.converged
    assert warm.iterations == 1


def test_feasibility_is_preserved_through_sweeps():
    network = grid_network(3, 3, num_commodities=2, seed=3)
    result = solve_path_projection_gradient(network, tolerance=1e-6)
    FlowVector(network, result.flow.values()).check_feasible()
    assert result.potential_value == pytest.approx(potential(result.flow))
