"""Best-response dynamics, fresh and stale, plus the two-link closed form.

The best-response dynamics (Eq. 2 of the paper) is not based on sampling:
every activated agent switches to a latency-minimal path of its commodity, so
in the fluid limit the flow moves straight towards the set of best replies,

    df/dt in { f' - f(t) : f' in beta(f(t)) },

a differential inclusion because the shortest path need not be unique.  Under
stale information (Eq. 4) the best reply is computed against the flow at the
start of the phase, ``f(t_hat)``.

Within one phase the posted best reply is fixed, so the dynamics has the
explicit solution ``f(t_hat + s) = target + (f(t_hat) - target) * exp(-s)``;
the simulator exploits that closed form (no numerical integration needed,
and it reproduces the paper's Section 3.2 calculation exactly).  Ties are
broken by splitting the demand equally over all minimum-latency paths, the
standard selection that keeps the solution well defined.

:func:`two_link_best_response_flow` gives the fully explicit trajectory of
the two-link oscillation instance, used to validate the generic simulator.
"""

from __future__ import annotations

import math
from typing import Optional

import numpy as np

from ..wardrop.flow import FlowVector
from ..wardrop.network import WardropNetwork
from .trajectory import PhaseRecord, Trajectory


def best_reply_target(network: WardropNetwork, path_latencies: np.ndarray, tie_tolerance: float = 1e-12) -> np.ndarray:
    """Return the best-reply flow for the given (posted) path latencies.

    Every commodity puts its demand on its minimum-latency paths, split
    evenly among ties.
    """
    target = np.zeros(network.num_paths)
    for i, commodity in enumerate(network.commodities):
        indices = np.fromiter(network.paths.commodity_indices(i), dtype=int)
        latencies = path_latencies[indices]
        minimum = latencies.min()
        winners = indices[latencies <= minimum + tie_tolerance]
        target[winners] = commodity.demand / len(winners)
    return target


def simulate_best_response(
    network: WardropNetwork,
    update_period: float,
    horizon: float,
    initial_flow: Optional[FlowVector] = None,
    stale: bool = True,
    samples_per_phase: int = 10,
) -> Trajectory:
    """Simulate (stale) best-response dynamics using the per-phase closed form.

    With ``stale=True`` the best reply is recomputed only at phase starts
    (Eq. 4); with ``stale=False`` phases are made very short relative to the
    dynamics so the run approximates the up-to-date inclusion (Eq. 2).  The
    exponential-approach closed form is exact within each phase either way.
    """
    if update_period <= 0 or horizon <= 0:
        raise ValueError("update period and horizon must be positive")
    # ``is None``, not truthiness: FlowVector defines __len__, so ``or``
    # would silently replace a zero-length flow instead of rejecting it.
    flow = FlowVector.uniform(network) if initial_flow is None else initial_flow
    trajectory = Trajectory(
        network=network,
        policy_name="best-response" + ("" if stale else " (fresh)"),
        update_period=update_period if stale else 0.0,
    )
    time = 0.0
    trajectory.record(time, flow, -1)
    num_phases = int(np.ceil(horizon / update_period))
    for phase in range(num_phases):
        phase_start = phase * update_period
        phase_end = min((phase + 1) * update_period, horizon)
        start_flow = flow
        posted_latencies = network.path_latencies(flow.values())
        target = best_reply_target(network, posted_latencies)
        duration = phase_end - phase_start
        # Record a few intermediate samples so oscillations are visible.
        for k in range(1, samples_per_phase + 1):
            elapsed = duration * k / samples_per_phase
            decay = math.exp(-elapsed)
            values = target + (start_flow.values() - target) * decay
            flow = FlowVector(network, values, validate=False).projected()
            if k < samples_per_phase:
                trajectory.record(phase_start + elapsed, flow, phase)
        trajectory.record_phase(
            PhaseRecord(
                index=phase,
                start_time=phase_start,
                end_time=phase_end,
                start_flow=start_flow,
                end_flow=flow,
            )
        )
        trajectory.record(phase_end, flow, phase)
        if phase_end >= horizon:
            break
    return trajectory


def two_link_best_response_flow(
    initial_first_link: float, update_period: float, time: float
) -> float:
    """Closed-form first-link flow of stale best response on the two-link instance.

    Implements the piecewise-exponential solution of Section 3.2: within a
    phase the flow on the first link decays towards 0 or 1 depending on which
    link looked cheaper at the phase start.  Valid for the symmetric instance
    with threshold 1/2 (the best reply flips exactly when the posted flow
    crosses 1/2).
    """
    if update_period <= 0:
        raise ValueError("update period must be positive")
    if not 0.0 <= initial_first_link <= 1.0:
        raise ValueError("flow share must lie in [0, 1]")
    if time < 0:
        raise ValueError("time must be non-negative")
    current = initial_first_link
    remaining = time
    while remaining > 1e-15:
        elapsed = min(update_period, remaining)
        if current > 0.5:
            # Link 1 posted as more expensive: flow decays towards 0.
            current = current * math.exp(-elapsed)
        elif current < 0.5:
            # Link 2 posted as more expensive: flow grows towards 1.
            current = 1.0 - (1.0 - current) * math.exp(-elapsed)
        # current == 0.5 exactly: equilibrium, nothing moves.
        remaining -= elapsed
    return current
