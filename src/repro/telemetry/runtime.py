"""The active telemetry session: one tracer + one metrics registry.

Engines never take a telemetry argument -- they call :func:`get_telemetry`
at the top of their run loop, which returns either the disabled
:data:`NULL_TELEMETRY` (the default; spans and metric updates are then
near-free no-ops) or the session installed by :func:`telemetry_session` /
:func:`set_telemetry`.  Keeping the lookup out of engine signatures is what
lets every existing call site -- and every bit-identity test -- run
unmodified whether or not telemetry is on.

    from repro.telemetry import telemetry_session

    with telemetry_session(trace_path="out.jsonl") as tele:
        simulate(network, policy, update_period=0.1, horizon=10.0)
    # out.jsonl now holds the engine_run/phase span tree + metrics snapshot

``progress`` attaches an event listener (a callable ``(name, attrs)``);
the experiment runner's per-case started/finished events and batch-fusion
decisions flow through it, which is what ``repro sweep --progress`` prints.
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import Any, Callable, Iterator, List, Optional

from .metrics import NULL_METRICS, MetricsRegistry, NullMetrics
from .tracer import NULL_TRACER, NullTracer, Tracer

__all__ = [
    "Telemetry",
    "NULL_TELEMETRY",
    "get_telemetry",
    "set_telemetry",
    "telemetry_session",
]

ProgressListener = Callable[[str, dict], None]


class Telemetry:
    """Facade bundling a tracer, a metrics registry and event listeners."""

    def __init__(
        self,
        tracer: Optional[Tracer] = None,
        metrics: Optional[MetricsRegistry] = None,
    ):
        self.tracer = tracer if tracer is not None else Tracer()
        self.metrics = metrics if metrics is not None else MetricsRegistry()
        self.listeners: List[ProgressListener] = []
        # Set by telemetry_session(profile=True); its records ride along in
        # the exported trace and `repro report` renders them.
        self.profiler = None

    @property
    def enabled(self) -> bool:
        return True

    # Tracing shortcuts ------------------------------------------------------

    def span(self, name: str, **attributes: Any):
        return self.tracer.span(name, **attributes)

    def event(self, name: str, **attributes: Any) -> None:
        self.tracer.event(name, **attributes)
        for listener in self.listeners:
            listener(name, attributes)

    def annotate(self, **attributes: Any) -> None:
        self.tracer.annotate(**attributes)

    # Metrics shortcuts ------------------------------------------------------

    def counter(self, name: str):
        return self.metrics.counter(name)

    def gauge(self, name: str):
        return self.metrics.gauge(name)

    def histogram(self, name: str):
        return self.metrics.histogram(name)

    def series_of(self, name: str):
        return self.metrics.series_of(name)

    # Export -----------------------------------------------------------------

    def write_trace(self, path) -> None:
        """Write the JSONL trace: spans + events, then the metrics snapshot
        (and, when a profiler ran, its sample records)."""
        extra = [self.metrics.to_record()]
        if self.profiler is not None:
            extra.extend(self.profiler.records())
        self.tracer.write_jsonl(path, extra_records=extra)


class _NullTelemetry(Telemetry):
    """The disabled session returned by default from :func:`get_telemetry`."""

    def __init__(self) -> None:
        self.tracer: NullTracer = NULL_TRACER  # type: ignore[assignment]
        self.metrics: NullMetrics = NULL_METRICS  # type: ignore[assignment]
        self.listeners = []

    @property
    def enabled(self) -> bool:
        return False

    def event(self, name: str, **attributes: Any) -> None:
        return None

    def write_trace(self, path) -> None:  # pragma: no cover - guard
        raise RuntimeError("no active telemetry session to export")


NULL_TELEMETRY = _NullTelemetry()

_active: Telemetry = NULL_TELEMETRY


def get_telemetry() -> Telemetry:
    """Return the active session (the disabled no-op one by default)."""
    return _active


def set_telemetry(telemetry: Optional[Telemetry]) -> Telemetry:
    """Install ``telemetry`` as the active session; returns the previous one.

    Passing ``None`` restores the disabled default.  Prefer the
    :func:`telemetry_session` context manager, which also restores and
    exports on exit.
    """
    global _active
    previous = _active
    _active = telemetry if telemetry is not None else NULL_TELEMETRY
    return previous


@contextmanager
def telemetry_session(
    trace_path=None,
    progress: Optional[ProgressListener] = None,
    telemetry: Optional[Telemetry] = None,
    profile: bool = False,
    profile_interval: float = 0.005,
) -> Iterator[Telemetry]:
    """Activate a telemetry session for the duration of a ``with`` block.

    ``trace_path`` writes the JSONL trace (spans, events, metrics snapshot)
    on exit -- also on exceptions, so aborted runs keep their partial trace.
    ``progress`` registers an event listener.  ``telemetry`` reuses an
    existing session object instead of building a fresh one (e.g. to share
    one registry across several blocks).  ``profile`` starts the sampling
    profiler for the block; its samples land in the exported trace.

    On exit the session's engine runs are also appended to the run ledger
    when one is configured (``REPRO_LEDGER_DIR`` or ``--ledger``); see
    :mod:`repro.telemetry.ledger`.
    """
    session = telemetry if telemetry is not None else Telemetry()
    if progress is not None:
        session.listeners.append(progress)
    if profile:
        from .profiler import SamplingProfiler

        session.profiler = SamplingProfiler(
            interval=profile_interval, tracer=session.tracer
        )
        session.profiler.start()
    previous = set_telemetry(session)
    try:
        yield session
    finally:
        set_telemetry(previous)
        if session.profiler is not None:
            session.profiler.stop()
        if progress is not None and progress in session.listeners:
            session.listeners.remove(progress)
        if trace_path is not None:
            session.write_trace(trace_path)
        from .ledger import record_session

        record_session(session)
