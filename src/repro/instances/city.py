"""Synthetic city-scale road network: grid streets plus arterial corridors.

Real city instances (Anaheim, Chicago sketch, ...) are TNTP file pairs too
large to bundle with the reproduction.  This module generates one instead: a
``blocks x blocks`` street grid with bidirectional links between adjacent
intersections, where every ``arterial_every``-th row and column is an
*arterial* -- higher capacity and higher speed than the side streets -- so
shortest routes concentrate on a sparse sub-grid exactly like real cities.
At the default 16 blocks this yields ``2 * 2 * 16 * 15 = 960`` directed
links, the road-network scale the batched column-generation driver and the
CSR incidence tier are built for.

The generator does not build the network directly: it emits TNTP text
(:func:`city_tntp_text`) and loads it through
:func:`repro.instances.tntp.load_tntp_from_text`, the same code path that
parses Anaheim-class files.  That guarantees the synthetic city is
TNTP-convertible by construction (``repro`` can round-trip it to disk and
back) and keeps unit conversion identical to the real fixtures.

Demand is seeded between periphery intersections (trips crossing town have
to pick arterials vs. side streets), calibrated to mild congestion so the
column-generation duality-gap certificates can reach ``<= 1e-3``.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

import numpy as np

from ..wardrop.network import WardropNetwork
from .tntp import load_tntp_from_text

# Raw TNTP units: capacities in vehicles/hour, lengths in blocks, times in
# minutes (free-flow time = length / speed * 60).  Arterials move ~3x the
# volume at ~1.6x the speed of side streets.
STREET_CAPACITY = 900.0
ARTERIAL_CAPACITY = 2700.0
STREET_SPEED = 30.0
ARTERIAL_SPEED = 48.0
BPR_ALPHA = 0.15
BPR_BETA = 4


def _node(row: int, col: int, blocks: int) -> int:
    """TNTP node id of intersection (row, col); ids are 1-based row-major."""
    return row * blocks + col + 1


def _link_row(
    tail: int, head: int, arterial: bool, length: float = 1.0
) -> str:
    capacity = ARTERIAL_CAPACITY if arterial else STREET_CAPACITY
    speed = ARTERIAL_SPEED if arterial else STREET_SPEED
    free_flow_time = length / speed * 60.0
    return (
        f"{tail} {head} {capacity:.1f} {length:.1f} {free_flow_time:.6f} "
        f"{BPR_ALPHA} {BPR_BETA} {speed:.1f} 0 1 ;"
    )


def _periphery_nodes(blocks: int) -> List[int]:
    """Intersections on the city boundary, in increasing id order."""
    nodes = []
    for row in range(blocks):
        for col in range(blocks):
            if row in (0, blocks - 1) or col in (0, blocks - 1):
                nodes.append(_node(row, col, blocks))
    return nodes


def city_tntp_text(
    blocks: int = 16,
    arterial_every: int = 4,
    od_pairs: int = 12,
    demand: float = 600.0,
    seed: int = 17,
) -> Tuple[str, str]:
    """Generate the ``(net_text, trips_text)`` TNTP pair of a synthetic city.

    Parameters
    ----------
    blocks:
        Grid side length; the city has ``blocks**2`` intersections and
        ``4 * blocks * (blocks - 1)`` directed links.
    arterial_every:
        Every ``arterial_every``-th row (horizontal links) and column
        (vertical links) is an arterial.
    od_pairs:
        Number of origin--destination pairs, sampled between distinct
        periphery intersections.
    demand:
        Mean raw demand per OD pair (vehicles); each pair draws uniformly
        from ``[0.75, 1.25] * demand``.
    seed:
        Seed for the OD sampling; the network text is fully deterministic.
    """
    if blocks < 2:
        raise ValueError("a city needs at least 2x2 blocks")
    if arterial_every < 1:
        raise ValueError("arterial_every must be positive")
    if od_pairs < 1:
        raise ValueError("od_pairs must be positive")

    link_rows: List[str] = []
    for row in range(blocks):
        for col in range(blocks):
            here = _node(row, col, blocks)
            if col + 1 < blocks:
                east = _node(row, col + 1, blocks)
                arterial = row % arterial_every == 0
                link_rows.append(_link_row(here, east, arterial))
                link_rows.append(_link_row(east, here, arterial))
            if row + 1 < blocks:
                south = _node(row + 1, col, blocks)
                arterial = col % arterial_every == 0
                link_rows.append(_link_row(here, south, arterial))
                link_rows.append(_link_row(south, here, arterial))

    num_nodes = blocks * blocks
    net_text = "\n".join(
        [
            f"<NUMBER OF ZONES> {num_nodes}",
            f"<NUMBER OF NODES> {num_nodes}",
            "<FIRST THRU NODE> 1",
            f"<NUMBER OF LINKS> {len(link_rows)}",
            "<END OF METADATA>",
            "~ \tTail\tHead\tCapacity\tLength\tFFT\tB\tPower\tSpeed\tToll\tType\t;",
            *link_rows,
            "",
        ]
    )

    periphery = _periphery_nodes(blocks)
    max_pairs = len(periphery) * (len(periphery) - 1)
    if od_pairs > max_pairs:
        raise ValueError(
            f"od_pairs={od_pairs} exceeds the {max_pairs} distinct periphery pairs"
        )
    rng = np.random.default_rng(seed)
    pairs: List[Tuple[int, int]] = []
    chosen = set()
    while len(pairs) < od_pairs:
        origin, destination = rng.choice(periphery, size=2, replace=False)
        pair = (int(origin), int(destination))
        if pair not in chosen:
            chosen.add(pair)
            pairs.append(pair)
    # Round demands to cents so the emitted text reproduces the total the
    # header declares exactly (the parser cross-checks <TOTAL OD FLOW>).
    volumes = {
        pair: round(float(demand * rng.uniform(0.75, 1.25)), 2) for pair in pairs
    }
    total = round(sum(volumes.values()), 2)

    trip_lines: List[str] = []
    for origin in sorted({pair[0] for pair in volumes}):
        trip_lines.append(f"Origin {origin}")
        for (o, destination), volume in sorted(volumes.items()):
            if o == origin:
                trip_lines.append(f"    {destination} : {volume:.2f};")
    trips_text = "\n".join(
        [
            f"<NUMBER OF ZONES> {num_nodes}",
            f"<TOTAL OD FLOW> {total:.2f}",
            "<END OF METADATA>",
            *trip_lines,
            "",
        ]
    )
    return net_text, trips_text


def synthetic_city_network(
    blocks: int = 16,
    arterial_every: int = 4,
    od_pairs: int = 12,
    demand: float = 600.0,
    seed: int = 17,
    name: Optional[str] = None,
    max_od_pairs: Optional[int] = None,
    incidence_mode: Optional[str] = None,
) -> WardropNetwork:
    """Build the synthetic city as a restricted :class:`WardropNetwork`.

    Generates TNTP text with :func:`city_tntp_text` and loads it through the
    standard TNTP loader, so the result behaves exactly like a loaded
    Anaheim-class instance: one free-flow shortest path per commodity,
    CSR incidence by default, ``total_demand`` recorded in ``graph.graph``.
    """
    net_text, trips_text = city_tntp_text(
        blocks=blocks,
        arterial_every=arterial_every,
        od_pairs=od_pairs,
        demand=demand,
        seed=seed,
    )
    if name is None:
        name = f"city-grid-{blocks}x{blocks}"
    return load_tntp_from_text(
        net_text,
        trips_text,
        name=name,
        max_od_pairs=max_od_pairs,
        incidence_mode=incidence_mode,
    )
