"""Shortest-path oracle backends: scipy/python parity and auto-selection."""

import networkx as nx
import numpy as np
import pytest

from repro.instances import braess_network, get_instance
from repro.instances.tntp import sioux_falls_network
from repro.largescale.incidence import have_scipy
from repro.largescale.shortest import SCIPY_BACKEND_MIN_EDGES, ShortestPathOracle
from repro.wardrop.commodity import Commodity
from repro.wardrop.latency import AffineLatency, ConstantLatency
from repro.wardrop.network import LATENCY_ATTR

requires_scipy = pytest.mark.skipif(not have_scipy(), reason="scipy not installed")


def build_oracles(network, backend_pair=("python", "scipy")):
    kwargs = dict(first_thru_node=network.graph.graph.get("first_thru_node"))
    return tuple(
        ShortestPathOracle(network.graph, network.commodities, backend=backend, **kwargs)
        for backend in backend_pair
    )


@requires_scipy
class TestSiouxFallsParity:
    """The satellite's parity contract on the bundled road instance."""

    def setup_method(self):
        self.network = sioux_falls_network()
        self.python, self.scipy = build_oracles(self.network)

    def cost_vectors(self):
        free_flow = self.python.free_flow_costs(self.network)
        rng = np.random.default_rng(7)
        congested = self.python.latency_costs(
            self.network, rng.random(self.python.num_edges) * 0.02
        )
        return {"free-flow": free_flow, "congested": congested}

    def test_auto_selects_scipy_at_road_size(self):
        auto = ShortestPathOracle(
            self.network.graph,
            self.network.commodities,
            first_thru_node=self.network.graph.graph.get("first_thru_node"),
        )
        assert auto.backend == "scipy"
        assert self.network.num_edges >= SCIPY_BACKEND_MIN_EDGES

    def test_commodity_path_costs_agree(self):
        for label, costs in self.cost_vectors().items():
            paths_py = self.python.shortest_commodity_paths(costs)
            paths_sp = self.scipy.shortest_commodity_paths(costs)
            for i, (a, b) in enumerate(zip(paths_py, paths_sp)):
                cost_a = sum(costs[self.python.edge_index[e]] for e in a.edges)
                cost_b = sum(costs[self.scipy.edge_index[e]] for e in b.edges)
                # tie-breaking may pick different shortest paths, but the
                # costs must agree to floating-point accumulation accuracy
                assert cost_a == pytest.approx(cost_b, abs=1e-9), (label, i)

    def test_all_or_nothing_sptt_agrees(self):
        for label, costs in self.cost_vectors().items():
            load_py = self.python.all_or_nothing(costs)
            load_sp = self.scipy.all_or_nothing(costs)
            assert load_py.sptt == pytest.approx(load_sp.sptt, rel=1e-12), label
            # both loadings route the full demand
            assert load_py.edge_flows.sum() > 0
            assert load_sp.edge_flows.sum() > 0

    def test_single_pair_distance_agrees(self):
        costs = self.python.free_flow_costs(self.network)
        commodity = self.network.commodities[0]
        _, dist_py = self.python.shortest_path(commodity.source, commodity.sink, costs)
        _, dist_sp = self.scipy.shortest_path(commodity.source, commodity.sink, costs)
        assert dist_py == pytest.approx(dist_sp, abs=1e-12)


@requires_scipy
class TestCentroidSemantics:
    """First-thru-node blocking must match the Python expansion rule."""

    def build(self):
        # Nodes 0 and 3 are centroids (first_thru_node=4 blocks 0..3 as
        # through nodes); the cheap route 0 -> 3 -> 4 must be forbidden
        # because it passes through centroid 3.
        graph = nx.MultiDiGraph()
        cheap = ConstantLatency(1.0)
        dear = ConstantLatency(10.0)
        graph.add_edge(0, 3, **{LATENCY_ATTR: cheap})
        graph.add_edge(3, 4, **{LATENCY_ATTR: cheap})
        graph.add_edge(0, 5, **{LATENCY_ATTR: dear})
        graph.add_edge(5, 4, **{LATENCY_ATTR: dear})
        commodities = [Commodity(0, 4, 1.0)]
        return graph, commodities

    @pytest.mark.parametrize("backend", ["python", "scipy"])
    def test_centroid_is_never_passed_through(self, backend):
        graph, commodities = self.build()
        oracle = ShortestPathOracle(
            graph, commodities, first_thru_node=4, backend=backend
        )
        costs = oracle.free_flow_costs()
        path, cost = oracle.shortest_path(0, 4, costs)
        assert cost == pytest.approx(20.0)
        assert all(edge[0] != 3 for edge in path)

    @pytest.mark.parametrize("backend", ["python", "scipy"])
    def test_centroid_source_may_leave(self, backend):
        graph, commodities = self.build()
        commodities = [Commodity(3, 4, 1.0)]
        oracle = ShortestPathOracle(
            graph, commodities, first_thru_node=4, backend=backend
        )
        _, cost = oracle.shortest_path(3, 4, oracle.free_flow_costs())
        assert cost == pytest.approx(1.0)


class TestCostValidation:
    """NaN costs must be rejected on both backends; +inf stays legal."""

    def build(self, backend):
        graph = nx.MultiDiGraph()
        graph.add_edge(0, 1, **{LATENCY_ATTR: ConstantLatency(1.0)})
        graph.add_edge(1, 2, **{LATENCY_ATTR: ConstantLatency(1.0)})
        graph.add_edge(0, 2, **{LATENCY_ATTR: ConstantLatency(5.0)})
        return ShortestPathOracle(graph, [Commodity(0, 2, 1.0)], backend=backend)

    def backends(self):
        return ["python", "scipy"] if have_scipy() else ["python"]

    def test_nan_costs_rejected(self):
        # ``costs < 0`` is False for NaN, so a bare negativity check would
        # let NaN through and silently corrupt the Dijkstra distances.
        for backend in self.backends():
            oracle = self.build(backend)
            costs = oracle.free_flow_costs()
            costs[1] = np.nan
            with pytest.raises(ValueError, match="NaN"):
                oracle.shortest_commodity_paths(costs)

    def test_negative_costs_still_rejected(self):
        for backend in self.backends():
            oracle = self.build(backend)
            costs = oracle.free_flow_costs()
            costs[0] = -1.0
            with pytest.raises(ValueError, match="non-negative"):
                oracle.shortest_commodity_paths(costs)

    def test_infinite_costs_stay_legal_and_price_edges_out(self):
        # +inf is how closures and centroid out-arcs are priced: the edge
        # must become unusable without tripping the validator.
        for backend in self.backends():
            oracle = self.build(backend)
            costs = oracle.free_flow_costs()
            costs[oracle.edge_index[(0, 1, 0)]] = np.inf
            (path,) = oracle.shortest_commodity_paths(costs)
            assert path.edges == ((0, 2, 0),), backend


class TestBackendSelection:
    def test_small_instances_stay_python(self):
        network = braess_network()
        oracle = ShortestPathOracle(network.graph, network.commodities)
        assert oracle.backend == "python"

    def test_parallel_edges_force_python(self):
        network = get_instance("two-links")  # two parallel s->t edges
        oracle = ShortestPathOracle(network.graph, network.commodities)
        assert oracle.backend == "python"
        if have_scipy():
            with pytest.raises(ValueError, match="parallel"):
                ShortestPathOracle(
                    network.graph, network.commodities, backend="scipy"
                )

    def test_unknown_backend_rejected(self):
        network = braess_network()
        with pytest.raises(ValueError, match="backend"):
            ShortestPathOracle(network.graph, network.commodities, backend="gpu")

    @requires_scipy
    def test_forced_scipy_on_small_graph(self):
        # Forcing scipy below the auto threshold still answers correctly.
        graph = nx.MultiDiGraph()
        rng = np.random.default_rng(3)
        for u in range(6):
            for v in range(6):
                if u != v and rng.random() < 0.6:
                    graph.add_edge(
                        u, v, **{LATENCY_ATTR: AffineLatency(rng.random(), 0.1 + rng.random())}
                    )
        commodities = [Commodity(0, 5, 1.0), Commodity(1, 4, 1.0)]
        python, scipy_oracle = (
            ShortestPathOracle(graph, commodities, backend="python"),
            ShortestPathOracle(graph, commodities, backend="scipy"),
        )
        costs = python.free_flow_costs()
        load_py = python.all_or_nothing(costs)
        load_sp = scipy_oracle.all_or_nothing(costs)
        assert load_py.sptt == pytest.approx(load_sp.sptt, rel=1e-12)
