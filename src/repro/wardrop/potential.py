"""The Beckmann--McGuire--Winsten potential and the paper's decomposition.

The potential

    Phi(f) = sum_{e in E} int_0^{f_e} l_e(u) du

is minimised exactly at the Wardrop equilibria (Beckmann, McGuire and
Winsten, 1956) and is the Lyapunov function behind every convergence result
in the paper.  This module computes the potential exactly (using the
closed-form antiderivatives of the latency library) and implements the
quantities of Lemma 3 and Lemma 4:

* the *virtual potential gain* of a phase,
  ``V(f_hat, f) = sum_e l_e(f_hat) * (f_e - f_hat_e)`` (Eq. 8),
* the *error terms* ``U_e = int_{f_hat_e}^{f_e} (l_e(u) - l_e(f_hat_e)) du``
  (Eq. 7), and
* the exact decomposition ``Phi(f) - Phi(f_hat) = sum_e U_e + V`` (Lemma 3).

These are used by the tests and by the potential-decomposition benchmark to
verify the central inequality ``Delta Phi <= V / 2`` of Lemma 4 empirically.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

import numpy as np

from .flow import FlowVector
from .network import WardropNetwork


def potential(flow: FlowVector) -> float:
    """Return the Beckmann--McGuire--Winsten potential ``Phi(f)``."""
    network = flow.network
    edge_flows = flow.edge_flows()
    return float(
        sum(
            network.latency_function(edge).integral(edge_flows[i])
            for i, edge in enumerate(network.edges)
        )
    )


def potential_of_edge_flows(network: WardropNetwork, edge_flows: np.ndarray) -> float:
    """Return ``Phi`` evaluated directly on an edge-flow vector."""
    return float(
        sum(
            network.latency_function(edge).integral(edge_flows[i])
            for i, edge in enumerate(network.edges)
        )
    )


def potential_gap(flow: FlowVector, optimum: float) -> float:
    """Return ``Phi(f) - Phi*`` given the optimal potential value."""
    return potential(flow) - optimum


def virtual_potential_gain(stale: FlowVector, current: FlowVector) -> float:
    """Return the virtual potential gain ``V(f_hat, f)`` of Eq. (8).

    ``stale`` is the flow at the beginning of the phase (the one whose
    latencies are posted on the bulletin board) and ``current`` the flow at
    the end of the phase.  For any selfish policy the value is non-positive.
    """
    if stale.network is not current.network:
        raise ValueError("flows must live on the same network")
    stale_latencies = stale.edge_latencies()
    delta = current.edge_flows() - stale.edge_flows()
    return float(np.dot(stale_latencies, delta))


def error_terms(stale: FlowVector, current: FlowVector) -> np.ndarray:
    """Return the per-edge error terms ``U_e`` of Eq. (7).

    ``U_e`` measures how much the edge latency moved away from its posted
    value while the flow changed during the phase; it is the quantity the
    proof of Lemma 4 charges against the virtual gain.
    """
    if stale.network is not current.network:
        raise ValueError("flows must live on the same network")
    network = stale.network
    stale_edge = stale.edge_flows()
    current_edge = current.edge_flows()
    terms = np.zeros(network.num_edges)
    for i, edge in enumerate(network.edges):
        latency = network.latency_function(edge)
        posted = latency.value(stale_edge[i])
        # int_{fhat}^{f} (l(u) - posted) du, exact via the antiderivative.
        terms[i] = (
            latency.integral(current_edge[i])
            - latency.integral(stale_edge[i])
            - posted * (current_edge[i] - stale_edge[i])
        )
    return terms


@dataclass(frozen=True)
class PotentialDecomposition:
    """The Lemma 3 decomposition of a phase's potential change.

    Attributes
    ----------
    delta_phi:
        The true potential change ``Phi(f) - Phi(f_hat)``.
    virtual_gain:
        The virtual potential gain ``V(f_hat, f)`` (non-positive for selfish
        policies).
    error_terms:
        Per-edge error terms ``U_e``; their sum plus the virtual gain equals
        ``delta_phi`` exactly (up to floating point).
    """

    delta_phi: float
    virtual_gain: float
    error_terms: np.ndarray

    @property
    def error_total(self) -> float:
        return float(self.error_terms.sum())

    @property
    def identity_residual(self) -> float:
        """Return ``delta_phi - (sum U_e + V)``; zero by Lemma 3."""
        return self.delta_phi - (self.error_total + self.virtual_gain)

    def satisfies_lemma4(self, slack: float = 1e-9) -> bool:
        """Return ``True`` if ``delta_phi <= virtual_gain / 2 + slack``.

        This is the conclusion of Lemma 4 under the safe update period; the
        benchmark harness checks it phase by phase.
        """
        return self.delta_phi <= 0.5 * self.virtual_gain + slack


def decompose_phase(stale: FlowVector, current: FlowVector) -> PotentialDecomposition:
    """Compute the full Lemma 3 decomposition for one bulletin-board phase."""
    return PotentialDecomposition(
        delta_phi=potential(current) - potential(stale),
        virtual_gain=virtual_potential_gain(stale, current),
        error_terms=error_terms(stale, current),
    )


def potential_trace(flows: List[FlowVector]) -> np.ndarray:
    """Return the potential evaluated along a trajectory of flow vectors."""
    return np.array([potential(flow) for flow in flows])
