"""The paper's primary contribution: smooth adaptive rerouting under staleness.

This subpackage implements the two-step (sample, migrate) rerouting policies
of Section 2.2, the bulletin-board model of stale information of Section 2.3,
the fluid-limit and finite-agent simulators, the best-response baseline and
the closed-form bounds of the theorems.
"""

from .agents import AgentBasedSimulator, AgentSimulationConfig, simulate_agents
from .best_response import (
    best_reply_target,
    simulate_best_response,
    two_link_best_response_flow,
)
from .bounds import (
    max_update_period_for_latency,
    oscillation_amplitude,
    oscillation_fixed_point,
    proportional_convergence_bound,
    theorem_update_period,
    uniform_convergence_bound,
)
from .bulletin import BoardSnapshot, BulletinBoard, FreshInformationBoard
from .dynamics import (
    batch_stepper_for,
    euler_step,
    euler_step_batch,
    integrate,
    integration_step_for,
    num_integration_steps,
    rk4_step,
    rk4_step_batch,
)
from .migration import (
    BetterResponseMigration,
    LinearMigration,
    MigrationRule,
    ScaledLinearMigration,
    SmoothedBetterResponseMigration,
)
from .policy import (
    ReroutingPolicy,
    better_response_policy,
    replicator_policy,
    scaled_policy,
    smoothed_best_response_policy,
    uniform_policy,
)
from .sampling import ProportionalSampling, SamplingRule, SoftmaxSampling, UniformSampling
from .simulator import ReroutingSimulator, SimulationConfig, simulate
from .smoothness import (
    SmoothnessCheck,
    check_alpha_smoothness,
    max_safe_alpha,
    migration_rule_for_period,
    safe_update_period,
    safe_update_period_for_rule,
)
from .trajectory import PhaseRecord, Trajectory, TrajectoryPoint

__all__ = [
    "AgentBasedSimulator",
    "AgentSimulationConfig",
    "BetterResponseMigration",
    "BoardSnapshot",
    "BulletinBoard",
    "FreshInformationBoard",
    "LinearMigration",
    "MigrationRule",
    "PhaseRecord",
    "ProportionalSampling",
    "ReroutingPolicy",
    "ReroutingSimulator",
    "SamplingRule",
    "ScaledLinearMigration",
    "SimulationConfig",
    "SmoothedBetterResponseMigration",
    "SmoothnessCheck",
    "SoftmaxSampling",
    "Trajectory",
    "TrajectoryPoint",
    "UniformSampling",
    "batch_stepper_for",
    "best_reply_target",
    "better_response_policy",
    "check_alpha_smoothness",
    "euler_step",
    "euler_step_batch",
    "integrate",
    "integration_step_for",
    "num_integration_steps",
    "rk4_step_batch",
    "max_safe_alpha",
    "max_update_period_for_latency",
    "migration_rule_for_period",
    "oscillation_amplitude",
    "oscillation_fixed_point",
    "proportional_convergence_bound",
    "replicator_policy",
    "rk4_step",
    "safe_update_period",
    "safe_update_period_for_rule",
    "scaled_policy",
    "simulate",
    "simulate_agents",
    "simulate_best_response",
    "smoothed_best_response_policy",
    "theorem_update_period",
    "two_link_best_response_flow",
    "uniform_convergence_bound",
    "uniform_policy",
]
