"""E3 -- Lemma 4 / Corollary 5: the safe update period T* = 1/(4 D alpha beta).

Sweeps the ratio ``T / T*`` for a fixed migration rule.  At or below the safe
period the paper guarantees per-phase potential decrease (``Delta Phi <=
V/2 <= 0``) and convergence; far above it the guarantee is void and an
aggressive rule on a steep instance visibly fails to settle.  The harness
prints, per ratio, the Lemma 4 violation count, the final potential gap and
the tail oscillation amplitude.
"""

from __future__ import annotations

import pytest

from repro.analysis import analyse_oscillation, phase_potential_stats, print_table
from repro.core import scaled_policy, simulate
from repro.core.smoothness import safe_update_period
from repro.instances import braess_network, lopsided_flow, two_link_network
from repro.solvers import optimal_potential
from repro.wardrop import FlowVector, potential

RATIOS = [0.25, 0.5, 1.0, 2.0, 8.0, 32.0]


def run_with_ratio(network, alpha, ratio, start, horizon_phases=120, min_horizon=15.0):
    policy = scaled_policy(alpha)
    safe = safe_update_period(network, alpha)
    period = ratio * safe
    # Give every ratio enough *simulated time* to settle: small ratios mean a
    # tiny update period, so a fixed phase count alone would end far too early.
    horizon = max(horizon_phases * period, min_horizon)
    steps_per_phase = 30 if horizon_phases * period >= min_horizon else 10
    return simulate(
        network, policy, update_period=period, horizon=horizon,
        initial_flow=start, steps_per_phase=steps_per_phase,
    ), period


@pytest.mark.experiment("E3")
def test_staleness_threshold_two_links(report_header):
    network = two_link_network(beta=8.0)
    alpha = 4.0  # aggressive: safe period is 1/(4*1*4*8) ~ 0.0078
    optimum = optimal_potential(network)
    rows = []
    for ratio in RATIOS:
        trajectory, period = run_with_ratio(network, alpha, ratio, lopsided_flow(network, 0.9))
        stats = phase_potential_stats(trajectory)
        oscillation = analyse_oscillation(trajectory)
        rows.append(
            {
                "T/T*": ratio,
                "T": period,
                "lemma4_violations": stats.lemma4_violations,
                "max_phi_increase": stats.max_potential_increase,
                "final_gap": potential(trajectory.final_flow) - optimum,
                "tail_amplitude": oscillation.amplitude,
            }
        )
    print_table(rows, title="E3: staleness threshold sweep, two links (beta=8, alpha=4)")
    safe_rows = [row for row in rows if row["T/T*"] <= 1.0]
    unsafe_rows = [row for row in rows if row["T/T*"] >= 8.0]
    for row in safe_rows:
        assert row["lemma4_violations"] == 0
        assert row["final_gap"] < 1e-2
    # Far beyond the threshold the dynamics is visibly worse (larger residual
    # oscillation / potential gap) than in the safe regime.
    worst_safe = max(row["tail_amplitude"] for row in safe_rows)
    worst_unsafe = max(row["tail_amplitude"] for row in unsafe_rows)
    assert worst_unsafe > worst_safe


@pytest.mark.experiment("E3")
def test_staleness_threshold_braess(report_header):
    network = braess_network()
    alpha = 2.0
    optimum = optimal_potential(network)
    start = FlowVector.single_path(network, {0: 0})
    rows = []
    for ratio in [0.5, 1.0, 4.0]:
        trajectory, period = run_with_ratio(network, alpha, ratio, start, horizon_phases=200)
        stats = phase_potential_stats(trajectory)
        rows.append(
            {
                "T/T*": ratio,
                "T": period,
                "lemma4_violations": stats.lemma4_violations,
                "final_gap": potential(trajectory.final_flow) - optimum,
            }
        )
    print_table(rows, title="E3: staleness threshold sweep, Braess network (alpha=2)")
    for row in rows:
        if row["T/T*"] <= 1.0:
            assert row["lemma4_violations"] == 0


@pytest.mark.experiment("E3")
def test_benchmark_safe_period_run(benchmark, report_header):
    network = two_link_network(beta=8.0)

    def run():
        return run_with_ratio(network, 4.0, 1.0, lopsided_flow(network, 0.9), horizon_phases=40)[0]

    trajectory = benchmark(run)
    assert phase_potential_stats(trajectory).lemma4_violations == 0
