"""Flow vectors of the Wardrop model.

A flow vector ``f = (f_P)_{P in P}`` is *feasible* if every component is
non-negative and, for every commodity ``i``, the path flows of the commodity
sum to its demand ``r_i``.  In the population interpretation ``f_P`` is the
fraction of agents currently routing over path ``P``.

:class:`FlowVector` wraps a numpy array together with the network it belongs
to and provides the derived quantities used throughout the paper:

* edge flows ``f_e`` and live edge/path latencies,
* the commodity average latency ``L_i`` and the overall average latency
  ``L`` (Section 2.1),
* feasibility checks and projections,
* standard starting distributions (uniform split, all flow on one path,
  random feasible flows).
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Sequence

import numpy as np

from .network import WardropNetwork
from .paths import Path


class FlowVector:
    """A feasible path-flow vector on a :class:`WardropNetwork`.

    The underlying array is copied at construction and never mutated; all
    operations return new vectors.  Use :meth:`values` for read access to a
    copy of the raw array.
    """

    def __init__(self, network: WardropNetwork, path_flows: Sequence[float], validate: bool = True):
        self.network = network
        self._flows = np.asarray(path_flows, dtype=float).copy()
        if self._flows.shape != (network.num_paths,):
            raise ValueError(
                f"flow vector has shape {self._flows.shape}, expected ({network.num_paths},)"
            )
        if validate:
            self.check_feasible()

    # Constructors ----------------------------------------------------------

    @classmethod
    def uniform(cls, network: WardropNetwork) -> "FlowVector":
        """Split every commodity's demand equally over its paths."""
        flows = np.zeros(network.num_paths)
        for i, commodity in enumerate(network.commodities):
            indices = list(network.paths.commodity_indices(i))
            flows[indices] = commodity.demand / len(indices)
        return cls(network, flows)

    @classmethod
    def single_path(cls, network: WardropNetwork, path_indices: Dict[int, int]) -> "FlowVector":
        """Put each commodity's entire demand on one chosen path.

        ``path_indices`` maps commodity index to the *local* index of the
        chosen path within that commodity's path list.
        """
        flows = np.zeros(network.num_paths)
        for i, commodity in enumerate(network.commodities):
            start, stop = network.paths.commodity_slice(i)
            local = path_indices.get(i, 0)
            if not 0 <= local < stop - start:
                raise ValueError(f"commodity {i} has no local path index {local}")
            flows[start + local] = commodity.demand
        return cls(network, flows)

    @classmethod
    def from_dict(cls, network: WardropNetwork, flows_by_path: Dict[Path, float]) -> "FlowVector":
        """Build a flow vector from an explicit ``{path: flow}`` mapping."""
        flows = np.zeros(network.num_paths)
        for path, value in flows_by_path.items():
            flows[network.paths.index_of(path)] = value
        return cls(network, flows)

    @classmethod
    def random(cls, network: WardropNetwork, rng: Optional[np.random.Generator] = None) -> "FlowVector":
        """Sample a feasible flow with Dirichlet(1,...,1) commodity splits."""
        rng = rng or np.random.default_rng()
        flows = np.zeros(network.num_paths)
        for i, commodity in enumerate(network.commodities):
            indices = list(network.paths.commodity_indices(i))
            split = rng.dirichlet(np.ones(len(indices)))
            flows[indices] = commodity.demand * split
        return cls(network, flows)

    # Feasibility ------------------------------------------------------------

    def check_feasible(self, tolerance: float = 1e-7) -> None:
        """Raise ``ValueError`` if the flow is infeasible."""
        if np.any(self._flows < -tolerance):
            worst = float(self._flows.min())
            raise ValueError(f"flow vector has negative component {worst}")
        for i, commodity in enumerate(self.network.commodities):
            indices = list(self.network.paths.commodity_indices(i))
            routed = float(self._flows[indices].sum())
            if abs(routed - commodity.demand) > tolerance:
                raise ValueError(
                    f"commodity {i} routes {routed}, demand is {commodity.demand}"
                )

    def is_feasible(self, tolerance: float = 1e-7) -> bool:
        """Return ``True`` if the flow satisfies non-negativity and demands."""
        try:
            self.check_feasible(tolerance)
        except ValueError:
            return False
        return True

    def projected(self) -> "FlowVector":
        """Return the closest simple repair of small numerical infeasibility.

        Negative components are clipped to zero and each commodity block is
        rescaled to its demand.  Intended to absorb integrator round-off, not
        to project arbitrary vectors.
        """
        flows = np.clip(self._flows, 0.0, None)
        for i, commodity in enumerate(self.network.commodities):
            indices = list(self.network.paths.commodity_indices(i))
            routed = flows[indices].sum()
            # Subnormal totals would overflow demand / routed to inf (and
            # 0 * inf to NaN), so they count as starved too.
            if routed <= np.finfo(float).tiny:
                flows[indices] = commodity.demand / len(indices)
            else:
                flows[indices] *= commodity.demand / routed
        return FlowVector(self.network, flows)

    @staticmethod
    def stack(vectors: Sequence["FlowVector"]) -> np.ndarray:
        """Stack flow vectors into a ``(B, P)`` array for the batched engine.

        The vectors may live on different same-topology networks (a family
        sweep); only their lengths must agree.  Network membership is the
        caller's contract -- the batched engine validates rows against its
        network or family members.
        """
        vectors = list(vectors)
        if not vectors:
            raise ValueError("cannot stack an empty list of flow vectors")
        length = len(vectors[0])
        if any(len(vector) != length for vector in vectors):
            raise ValueError("cannot stack flow vectors of different lengths")
        return np.stack([vector.values() for vector in vectors])

    @staticmethod
    def project_batch(network: WardropNetwork, path_flows: np.ndarray) -> np.ndarray:
        """Row-wise :meth:`projected` on a ``(B, P)`` batch of raw flow arrays.

        Applies exactly the clip-and-rescale repair of :meth:`projected` to
        every row and returns a new array; used by the batched simulator at
        phase boundaries.
        """
        flows = np.clip(np.asarray(path_flows, dtype=float), 0.0, None)
        for i, commodity in enumerate(network.commodities):
            indices = list(network.paths.commodity_indices(i))
            block = flows[:, indices]
            # Each row's routed mass must use the same 1-D pairwise reduction
            # as :meth:`projected` -- ``block.sum(axis=1)`` can accumulate in
            # a different order and land one ulp away, breaking the row-wise
            # bit-identity contract of the batched engines.
            routed = np.array([row.sum() for row in block])
            starved = routed <= np.finfo(float).tiny
            safe = np.where(starved, 1.0, routed)
            flows[:, indices] *= (commodity.demand / safe)[:, None]
            if starved.any():
                flows[np.ix_(np.flatnonzero(starved), indices)] = commodity.demand / len(indices)
        return flows

    # Raw access ---------------------------------------------------------------

    def values(self) -> np.ndarray:
        """Return a copy of the raw path-flow array."""
        return self._flows.copy()

    def __getitem__(self, path_index: int) -> float:
        return float(self._flows[path_index])

    def flow_on(self, path: Path) -> float:
        """Return the flow on a specific path object."""
        return float(self._flows[self.network.paths.index_of(path)])

    def __len__(self) -> int:
        return len(self._flows)

    # Derived quantities --------------------------------------------------------

    def edge_flows(self) -> np.ndarray:
        """Return the edge-flow vector ``f_e``."""
        return self.network.edge_flows(self._flows)

    def edge_latencies(self) -> np.ndarray:
        """Return the live edge latencies ``l_e(f_e)``."""
        return self.network.edge_latencies(self.edge_flows())

    def path_latencies(self) -> np.ndarray:
        """Return the live path latencies ``l_P(f)``."""
        return self.network.path_latencies(self._flows)

    def commodity_min_latency(self, commodity_index: int) -> float:
        """Return ``l^i_min``, the minimum path latency of a commodity."""
        indices = list(self.network.paths.commodity_indices(commodity_index))
        return float(self.path_latencies()[indices].min())

    def commodity_average_latency(self, commodity_index: int) -> float:
        """Return ``L_i = sum_P (f_P / r_i) * l_P`` for the commodity."""
        indices = list(self.network.paths.commodity_indices(commodity_index))
        latencies = self.path_latencies()[indices]
        flows = self._flows[indices]
        demand = self.network.commodities[commodity_index].demand
        return float(np.dot(flows, latencies) / demand)

    def average_latency(self) -> float:
        """Return the overall average latency ``L = sum_P f_P * l_P``."""
        return float(np.dot(self._flows, self.path_latencies()))

    def max_used_latency(self, threshold: float = 1e-9) -> float:
        """Return the maximum latency over paths carrying positive flow."""
        latencies = self.path_latencies()
        used = self._flows > threshold
        if not used.any():
            return 0.0
        return float(latencies[used].max())

    # Arithmetic -----------------------------------------------------------------

    def with_values(self, path_flows: np.ndarray, validate: bool = True) -> "FlowVector":
        """Return a new flow vector over the same network."""
        return FlowVector(self.network, path_flows, validate=validate)

    def blend(self, other: "FlowVector", weight: float) -> "FlowVector":
        """Return ``(1 - weight) * self + weight * other`` (a feasible convex mix)."""
        if other.network is not self.network:
            raise ValueError("cannot blend flows on different networks")
        if not 0.0 <= weight <= 1.0:
            raise ValueError("blend weight must lie in [0, 1]")
        return FlowVector(
            self.network, (1.0 - weight) * self._flows + weight * other._flows
        )

    def distance_to(self, other: "FlowVector") -> float:
        """Return the L1 distance between two flow vectors."""
        if other.network is not self.network:
            raise ValueError("cannot compare flows on different networks")
        return float(np.abs(self._flows - other._flows).sum())

    def __repr__(self) -> str:
        entries = ", ".join(f"{x:.4g}" for x in self._flows)
        return f"FlowVector([{entries}])"
