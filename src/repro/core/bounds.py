"""Closed-form quantities from the paper's theorems and worked example.

These functions encode the *predicted* side of every experiment: the
benchmark harness prints them next to the measured values so the shape of
each result (who wins, by what factor, where thresholds fall) can be compared
with the paper directly.

Contents
--------
* Section 3.2 (oscillation of best response on two links):
  - :func:`oscillation_fixed_point` -- the initial share ``1/(e^{-T}+1)``,
  - :func:`oscillation_amplitude`  -- the phase-start latency
    ``X = beta (1 - e^{-T}) / (2 e^{-T} + 2)``,
  - :func:`max_update_period_for_latency` -- the largest ``T`` keeping
    ``X <= eps`` (the ``T = O(eps/beta)`` statement).
* Lemma 4 / Corollary 5:
  - :func:`safe_update_period` (re-exported from ``smoothness``).
* Theorem 6 / Theorem 7:
  - :func:`uniform_convergence_bound` and
    :func:`proportional_convergence_bound` -- upper bounds (up to the
    constants hidden in the O-notation) on the number of update periods not
    starting at a (weak) (delta, eps)-equilibrium.
"""

from __future__ import annotations

import math

from ..wardrop.network import WardropNetwork
from .smoothness import safe_update_period  # noqa: F401  (re-exported on purpose)


# --- Section 3.2: the two-link oscillation -----------------------------------


def oscillation_fixed_point(update_period: float) -> float:
    """Return the first-link share ``f_1(0) = 1/(e^{-T} + 1)`` of the 2T-cycle."""
    if update_period <= 0:
        raise ValueError("update period must be positive")
    return 1.0 / (math.exp(-update_period) + 1.0)


def oscillation_amplitude(beta: float, update_period: float) -> float:
    """Return ``X = beta (1 - e^{-T}) / (2 e^{-T} + 2)``.

    This is the latency observed at the beginning of every phase along the
    oscillating best-response trajectory; the paper notes it is sustained by
    more than half of the agents.
    """
    if beta < 0:
        raise ValueError("beta must be non-negative")
    if update_period <= 0:
        raise ValueError("update period must be positive")
    decayed = math.exp(-update_period)
    return beta * (1.0 - decayed) / (2.0 * decayed + 2.0)


def max_update_period_for_latency(beta: float, epsilon: float) -> float:
    """Return the largest ``T`` for which the oscillation latency stays <= eps.

    Inverting ``X(T) <= eps`` gives ``T <= ln((1 + 2 eps / beta) / (1 - 2 eps / beta))``,
    the paper's ``T = O(eps / beta)`` requirement.  Returns ``inf`` when
    ``2 eps >= beta`` (the latency can never exceed ``eps``).
    """
    if beta <= 0:
        return float("inf")
    if epsilon <= 0:
        return 0.0
    ratio = 2.0 * epsilon / beta
    if ratio >= 1.0:
        return float("inf")
    return math.log((1.0 + ratio) / (1.0 - ratio))


# --- Theorems 6 and 7: convergence-time bounds --------------------------------


def uniform_convergence_bound(
    network: WardropNetwork,
    update_period: float,
    delta: float,
    epsilon: float,
    constant: float = 2.0 * math.e,
) -> float:
    """Return the Theorem 6 bound on bad update periods for uniform sampling.

    The bound is ``constant * m / (eps * T) * (l_max / delta)^2`` with
    ``m = max_i |P_i|``; the default ``constant`` matches the explicit
    factor ``2 e`` appearing in the proof (the O-notation hides it).
    """
    _validate_bound_args(update_period, delta, epsilon)
    m = max(
        len(network.paths.commodity_paths(i)) for i in range(network.num_commodities)
    )
    l_max = network.max_latency()
    return constant * m / (epsilon * update_period) * (l_max / delta) ** 2


def proportional_convergence_bound(
    network: WardropNetwork,
    update_period: float,
    delta: float,
    epsilon: float,
    constant: float = 2.0 * math.e,
) -> float:
    """Return the Theorem 7 bound on bad update periods for proportional sampling.

    ``constant / (eps * T) * (l_max / delta)^2`` -- independent of the number
    of paths, which is the point of the proportional rule.
    """
    _validate_bound_args(update_period, delta, epsilon)
    l_max = network.max_latency()
    return constant / (epsilon * update_period) * (l_max / delta) ** 2


def theorem_update_period(network: WardropNetwork, alpha: float) -> float:
    """Return ``min(1/(4 D alpha beta), 1)``, the period Theorems 6 and 7 assume."""
    return min(safe_update_period(network, alpha), 1.0)


def _validate_bound_args(update_period: float, delta: float, epsilon: float) -> None:
    if update_period <= 0:
        raise ValueError("update period must be positive")
    if delta <= 0:
        raise ValueError("delta must be positive")
    if not 0.0 < epsilon <= 1.0:
        raise ValueError("epsilon must lie in (0, 1]")
