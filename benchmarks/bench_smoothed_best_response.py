"""E8 -- Smoothed best response: interpolating between convergence and oscillation.

Section 2.2 of the paper notes that a softmax sampling rule
``sigma_PQ ∝ exp(-c l_Q)`` combined with a steep migration ramp approximates
best response while formally staying in the smooth class -- but with a large
smoothness parameter alpha, so the safe update period shrinks accordingly.
This benchmark fixes the update period and sweeps the aggressiveness (the
softmax concentration ``c`` and the ramp width): gentle parameters converge,
aggressive ones oscillate, exactly the trade-off the theory predicts.
"""

from __future__ import annotations

import pytest

from repro.analysis import analyse_oscillation, print_table
from repro.core import simulate, smoothed_best_response_policy
from repro.core.smoothness import safe_update_period
from repro.instances import lopsided_flow, two_link_network

UPDATE_PERIOD = 0.25
BETA = 8.0
# (concentration c, ramp width) from provably-safe to nearly-best-response.
# The first setting has alpha = 1/8 so T* = 1/(4*1*(1/8)*8) = 0.25 = T exactly.
SETTINGS = [(1.0, 8.0), (1.0, 2.0), (4.0, 0.5), (16.0, 0.1), (64.0, 0.02), (256.0, 0.005)]


def run_smoothed(concentration, width, phases=120):
    network = two_link_network(beta=BETA)
    policy = smoothed_best_response_policy(concentration, width)
    return simulate(
        network, policy, update_period=UPDATE_PERIOD, horizon=phases * UPDATE_PERIOD,
        initial_flow=lopsided_flow(network, 0.9), steps_per_phase=30,
    )


@pytest.mark.experiment("E8")
def test_smoothed_best_response_sweep(report_header):
    network = two_link_network(beta=BETA)
    rows = []
    for concentration, width in SETTINGS:
        policy = smoothed_best_response_policy(concentration, width)
        alpha = policy.smoothness
        trajectory = run_smoothed(concentration, width)
        report = analyse_oscillation(trajectory)
        rows.append(
            {
                "c": concentration,
                "width": width,
                "alpha": alpha,
                "T*": safe_update_period(network, alpha),
                "T/T*": UPDATE_PERIOD / safe_update_period(network, alpha),
                "tail_amplitude": report.amplitude,
                "mean_start_latency": report.mean_phase_start_latency,
                "oscillating": report.is_oscillating,
            }
        )
    print_table(
        rows,
        title=f"E8: smoothed best response at fixed T={UPDATE_PERIOD} (beta={BETA})",
    )
    # Safe settings (T <= T*) must not oscillate; the most aggressive setting
    # (T far above T*) must oscillate with a much larger amplitude.
    safe = [row for row in rows if row["T/T*"] <= 1.0]
    unsafe = [row for row in rows if row["T/T*"] > 50.0]
    assert safe and unsafe
    for row in safe:
        assert not row["oscillating"]
    assert max(row["tail_amplitude"] for row in unsafe) > 10 * max(
        row["tail_amplitude"] for row in safe
    )


@pytest.mark.experiment("E8")
def test_benchmark_smoothed_best_response(benchmark, report_header):
    trajectory = benchmark(run_smoothed, 16.0, 0.1, 40)
    assert len(trajectory.phases) == 40
