"""Unit tests for ReroutingPolicy: migration rates and growth rates."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import (
    ProportionalSampling,
    ReroutingPolicy,
    LinearMigration,
    better_response_policy,
    replicator_policy,
    scaled_policy,
    smoothed_best_response_policy,
    uniform_policy,
)
from repro.wardrop import FlowVector


class TestFactories:
    def test_uniform_policy_smoothness(self, two_links):
        policy = uniform_policy(two_links)
        assert policy.smoothness == pytest.approx(1.0 / two_links.max_latency())
        assert policy.label() == "uniform+linear"

    def test_replicator_policy(self, two_links):
        policy = replicator_policy(two_links)
        assert isinstance(policy.sampling, ProportionalSampling)
        assert policy.safe_update_period(two_links) > 0.0

    def test_better_response_policy_is_not_smooth(self):
        policy = better_response_policy()
        assert policy.smoothness is None

    def test_scaled_and_smoothed_policies(self, two_links):
        assert scaled_policy(2.0).smoothness == pytest.approx(2.0)
        policy = smoothed_best_response_policy(concentration=10.0, width=0.05)
        assert policy.smoothness == pytest.approx(20.0)


class TestRates:
    def test_growth_rates_conserve_demand(self, braess):
        policy = uniform_policy(braess)
        flow = FlowVector.uniform(braess)
        rates = policy.growth_rates(
            braess, flow.values(), flow.values(), flow.path_latencies()
        )
        for i in range(braess.num_commodities):
            indices = list(braess.paths.commodity_indices(i))
            assert np.sum(rates[indices]) == pytest.approx(0.0, abs=1e-12)

    def test_no_movement_at_equal_latencies(self, two_links):
        policy = uniform_policy(two_links)
        flow = FlowVector(two_links, [0.5, 0.5])
        rates = policy.growth_rates(two_links, flow.values(), flow.values(), flow.path_latencies())
        assert np.allclose(rates, 0.0)

    def test_flow_moves_towards_cheaper_path(self, two_links):
        policy = uniform_policy(two_links)
        flow = FlowVector(two_links, [0.9, 0.1])
        rates = policy.growth_rates(two_links, flow.values(), flow.values(), flow.path_latencies())
        assert rates[0] < 0.0
        assert rates[1] > 0.0

    def test_migration_rate_uses_stale_latencies(self, two_links):
        policy = uniform_policy(two_links)
        current = FlowVector(two_links, [0.5, 0.5])
        stale = FlowVector(two_links, [0.9, 0.1])
        # Live latencies are equal, but the posted (stale) ones are not, so the
        # policy keeps pushing flow towards the path that *looked* cheaper.
        rates = policy.growth_rates(
            two_links, current.values(), stale.values(), stale.path_latencies()
        )
        assert rates[1] > 0.0

    def test_rates_scale_with_current_flow(self, two_links):
        policy = uniform_policy(two_links)
        stale = FlowVector(two_links, [0.9, 0.1])
        latencies = stale.path_latencies()
        rho_full = policy.migration_rates(two_links, stale.values(), stale.values(), latencies)
        rho_half = policy.migration_rates(
            two_links, 0.5 * stale.values(), stale.values(), latencies
        )
        assert np.allclose(rho_half, 0.5 * rho_full)

    def test_replicator_rates_are_zero_on_unused_paths(self, two_links):
        policy = replicator_policy(two_links, exploration=0.0)
        flow = FlowVector(two_links, [1.0, 0.0])
        rates = policy.growth_rates(two_links, flow.values(), flow.values(), flow.path_latencies())
        # Pure replicator: an unused path is never sampled, so nothing moves.
        assert np.allclose(rates, 0.0)

    def test_custom_policy_composition(self, braess):
        policy = ReroutingPolicy(
            sampling=ProportionalSampling(),
            migration=LinearMigration(braess.max_latency()),
            name="custom",
        )
        assert policy.label() == "custom"
        flow = FlowVector.uniform(braess)
        rates = policy.growth_rates(braess, flow.values(), flow.values(), flow.path_latencies())
        assert rates.shape == (braess.num_paths,)
