"""Frank--Wolfe (conditional gradient) solver for Wardrop equilibria.

The Beckmann--McGuire--Winsten potential ``Phi`` is convex in the edge flows
and is minimised exactly at the Wardrop equilibria, so the classical
traffic-assignment algorithm applies:

1. at the current flow, compute the live edge latencies,
2. for every commodity route its whole demand on a shortest path with
   respect to those latencies (the "all-or-nothing" flow),
3. move towards the all-or-nothing flow with the step that minimises ``Phi``
   along the segment (exact line search),
4. repeat until the relative duality gap is below the tolerance.

The duality gap ``sum_e l_e(f_e) (f_e - y_e)`` (current minus all-or-nothing)
upper-bounds ``Phi(f) - Phi*`` and doubles as the convergence certificate
returned to callers.

The solver serves as the *ground truth* baseline of the reproduction: the
adaptive rerouting policies of the paper are supposed to converge to the
flows this solver computes, and the tests compare them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..wardrop.flow import FlowVector
from ..wardrop.network import WardropNetwork
from ..wardrop.potential import potential
from .line_search import bisection_root
from .options import check_method


@dataclass(frozen=True)
class EquilibriumResult:
    """The output of the Frank--Wolfe solver.

    Attributes
    ----------
    flow:
        The (approximate) Wardrop-equilibrium flow.
    potential_value:
        The Beckmann potential at the returned flow.
    duality_gap:
        The final Frank--Wolfe duality gap; an upper bound on
        ``Phi(f) - Phi*``.
    iterations:
        Number of Frank--Wolfe iterations performed.
    converged:
        Whether the duality-gap tolerance was met before the iteration cap.
    gap_history:
        The duality gap after every iteration (useful for diagnostics).
    method:
        The algorithm that produced the result (``fw`` or ``pg``).
    """

    flow: FlowVector
    potential_value: float
    duality_gap: float
    iterations: int
    converged: bool
    gap_history: List[float]
    method: str = "fw"


def all_or_nothing_flow(network: WardropNetwork, path_latencies: np.ndarray) -> np.ndarray:
    """Return the all-or-nothing path flow for given path latencies.

    Each commodity places its entire demand on (one of) its minimum-latency
    paths.  Ties are broken by the first index, which keeps the solver
    deterministic.
    """
    target = np.zeros(network.num_paths)
    for i, commodity in enumerate(network.commodities):
        indices = np.fromiter(network.paths.commodity_indices(i), dtype=int)
        best_local = int(np.argmin(path_latencies[indices]))
        target[indices[best_local]] = commodity.demand
    return target


def duality_gap(network: WardropNetwork, flows: np.ndarray) -> float:
    """Return the Frank--Wolfe duality gap of a path-flow vector."""
    latencies = network.path_latencies(flows)
    target = all_or_nothing_flow(network, latencies)
    return float(np.dot(latencies, flows - target))


def solve_wardrop_equilibrium(
    network: WardropNetwork,
    tolerance: float = 1e-8,
    max_iterations: int = 2000,
    initial: Optional[FlowVector] = None,
    method: str = "fw",
) -> EquilibriumResult:
    """Compute a Wardrop equilibrium of ``network`` in path space.

    Parameters
    ----------
    network:
        The instance to solve.
    tolerance:
        Target duality gap (absolute, in latency x flow units).
    max_iterations:
        Iteration cap; the result reports whether it was hit.
    initial:
        Optional warm-start flow; defaults to the uniform split.  The check
        is an explicit ``is None`` -- a warm start is honoured even when its
        truthiness is degenerate (``FlowVector.__len__`` makes empty vectors
        falsy, which an ``or`` default would silently drop).
    method:
        ``"fw"`` (classical Frank--Wolfe, the default) or ``"pg"``
        (path-based projection gradient, dispatched to
        :func:`~repro.solvers.projection_gradient.solve_path_projection_gradient`).
    """
    check_method(method, "path")
    if method == "pg":
        from .projection_gradient import solve_path_projection_gradient

        return solve_path_projection_gradient(
            network, tolerance=tolerance, max_iterations=max_iterations, initial=initial
        )
    flow = (FlowVector.uniform(network) if initial is None else initial).values()
    gap_history: List[float] = []
    converged = False
    iterations = 0
    for iterations in range(1, max_iterations + 1):
        latencies = network.path_latencies(flow)
        target = all_or_nothing_flow(network, latencies)
        gap = float(np.dot(latencies, flow - target))
        gap_history.append(gap)
        if gap <= tolerance:
            converged = True
            break
        direction = target - flow

        def potential_slope(step: float) -> float:
            """Directional derivative of Phi along the Frank--Wolfe segment."""
            point = flow + step * direction
            edge_flows = network.edge_flows(point)
            edge_latencies = network.edge_latencies(edge_flows)
            edge_direction = network.edge_flows(direction)
            return float(np.dot(edge_latencies, edge_direction))

        step = bisection_root(potential_slope, 0.0, 1.0)
        if step <= 0.0:
            # No progress possible along this direction; fall back to the
            # classical 2/(k+2) step to escape potential stalling.
            step = 2.0 / (iterations + 2.0)
        flow = flow + step * direction
    result_flow = FlowVector(network, flow).projected()
    final_gap = duality_gap(network, result_flow.values())
    return EquilibriumResult(
        flow=result_flow,
        potential_value=potential(result_flow),
        duality_gap=final_gap,
        iterations=iterations,
        converged=converged or final_gap <= tolerance,
        gap_history=gap_history,
    )


def optimal_potential(network: WardropNetwork, tolerance: float = 1e-10) -> float:
    """Return (an upper bound on) the minimum Beckmann potential ``Phi*``."""
    return solve_wardrop_equilibrium(network, tolerance=tolerance).potential_value
