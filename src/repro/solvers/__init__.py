"""Baseline equilibrium solvers used as ground truth for the dynamics.

The adaptive rerouting policies of the paper converge to Wardrop equilibria;
these solvers compute the same equilibria by classical convex optimisation
(Frank--Wolfe on the Beckmann potential) or exactly (water-filling for
parallel links) so that the dynamics can be validated against them.
"""

from .edge_frank_wolfe import (
    EdgeEquilibriumResult,
    edge_potential,
    relative_duality_gap,
    solve_edge_flow_equilibrium,
)
from .frank_wolfe import (
    EquilibriumResult,
    all_or_nothing_flow,
    duality_gap,
    optimal_potential,
    solve_wardrop_equilibrium,
)
from .line_search import bisection_root, golden_section_minimise
from .parallel_links import equilibrium_latency_level, solve_parallel_links

__all__ = [
    "EdgeEquilibriumResult",
    "EquilibriumResult",
    "all_or_nothing_flow",
    "bisection_root",
    "duality_gap",
    "edge_potential",
    "equilibrium_latency_level",
    "golden_section_minimise",
    "optimal_potential",
    "relative_duality_gap",
    "solve_edge_flow_equilibrium",
    "solve_parallel_links",
    "solve_wardrop_equilibrium",
]
