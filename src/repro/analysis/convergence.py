"""Convergence measurements matching the paper's convergence-time statements.

Theorems 6 and 7 bound "the number of update periods not starting at a
(weak) (delta, eps)-equilibrium".  The functions here compute exactly that
quantity from a recorded trajectory (which stores the flow at every phase
start), plus continuous-time variants (first time the potential gap or the
unsatisfied volume drops below a target) that the examples report.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..core.trajectory import Trajectory
from ..wardrop.equilibrium import unsatisfied_volume, weakly_unsatisfied_volume
from ..wardrop.potential import potential


@dataclass(frozen=True)
class ConvergenceSummary:
    """Counts of "bad" update periods along one trajectory.

    Attributes
    ----------
    total_phases:
        Number of completed bulletin-board phases in the run.
    bad_phases:
        Phases whose *starting* flow was not a (delta, eps)-equilibrium
        (Definition 3 volume above eps).
    weak_bad_phases:
        Phases whose starting flow was not a *weak* (delta, eps)-equilibrium
        (Definition 4).
    last_bad_phase:
        Index of the last bad phase (-1 if none); useful to check that bad
        phases stop occurring rather than merely being rare.
    delta, epsilon:
        The approximation parameters used.
    """

    total_phases: int
    bad_phases: int
    weak_bad_phases: int
    last_bad_phase: int
    delta: float
    epsilon: float


def count_bad_phases(trajectory: Trajectory, delta: float, epsilon: float) -> ConvergenceSummary:
    """Count update periods not starting at a (weak) (delta, eps)-equilibrium."""
    if delta <= 0:
        raise ValueError("delta must be positive")
    if not 0.0 < epsilon <= 1.0:
        raise ValueError("epsilon must lie in (0, 1]")
    bad = 0
    weak_bad = 0
    last_bad = -1
    for phase in trajectory.phases:
        start = phase.start_flow
        if unsatisfied_volume(start, delta) > epsilon:
            bad += 1
            last_bad = phase.index
        if weakly_unsatisfied_volume(start, delta) > epsilon:
            weak_bad += 1
    return ConvergenceSummary(
        total_phases=len(trajectory.phases),
        bad_phases=bad,
        weak_bad_phases=weak_bad,
        last_bad_phase=last_bad,
        delta=delta,
        epsilon=epsilon,
    )


def time_to_potential_gap(
    trajectory: Trajectory, optimal_potential: float, gap: float
) -> Optional[float]:
    """Return the first recorded time at which ``Phi(f) - Phi* <= gap``.

    ``None`` if the gap is never reached within the recorded horizon.
    """
    if gap < 0:
        raise ValueError("gap must be non-negative")
    for point in trajectory.points:
        if potential(point.flow) - optimal_potential <= gap:
            return point.time
    return None


def time_to_approximate_equilibrium(
    trajectory: Trajectory, delta: float, epsilon: float, weak: bool = False
) -> Optional[float]:
    """Return the first phase-start time at a (weak) (delta, eps)-equilibrium.

    Measured at phase starts to match the theorem statements.  ``None`` if no
    recorded phase start qualifies.
    """
    measure = weakly_unsatisfied_volume if weak else unsatisfied_volume
    for phase in trajectory.phases:
        if measure(phase.start_flow, delta) <= epsilon:
            return phase.start_time
    return None


def potential_is_monotone(trajectory: Trajectory, slack: float = 1e-9) -> bool:
    """Return True if the potential never increases along phase boundaries.

    Under up-to-date information (Theorem 2) and under stale information with
    a safe update period (Lemma 4) the potential measured at phase ends must
    be non-increasing; oscillating runs violate this.
    """
    values = [potential(phase.end_flow) for phase in trajectory.phases]
    return all(b <= a + slack for a, b in zip(values, values[1:]))


def final_distance_to(trajectory: Trajectory, reference_values: np.ndarray) -> float:
    """Return the L1 distance of the final flow to a reference flow vector."""
    return float(np.abs(trajectory.final_flow.values() - np.asarray(reference_values)).sum())


def fluid_limit_deviation(trajectory: Trajectory, fluid: Trajectory) -> float:
    """Return the sup-norm deviation of a run from a fluid-limit trajectory.

    For every recorded point of ``trajectory`` the fluid flow at the nearest
    recorded fluid time is looked up, and the maximum absolute difference of
    the path shares over all points and paths is returned -- the
    ``sup_t ||f_n(t) - f(t)||_inf`` statistic of the finite-``n`` versus
    fluid-limit comparison (benchmark E9), which by the functional law of
    large numbers should shrink like ``1/sqrt(n)`` as the population grows.
    Both trajectories are typically recorded on the same phase grid (same
    update period and horizon), in which case the time matching is exact.
    """
    if not trajectory.points or not fluid.points:
        raise ValueError("both trajectories must contain recorded points")
    times = trajectory.times
    fluid_times = fluid.times
    # Nearest recorded fluid time per point: fluid times are recorded in
    # increasing order, so a binary search plus a left/right-neighbour
    # comparison avoids the O(T * F) pairwise distance matrix.
    right = np.clip(np.searchsorted(fluid_times, times), 1, len(fluid_times) - 1)
    left = right - 1
    nearest = np.where(
        np.abs(times - fluid_times[left]) <= np.abs(fluid_times[right] - times),
        left,
        right,
    )
    fluid_flows = fluid.flow_matrix()[nearest]
    return float(np.max(np.abs(trajectory.flow_matrix() - fluid_flows)))
