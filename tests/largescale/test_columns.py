"""Column generation: the closed special case, growth semantics, and the
full-enumeration equivalence contract of the large-network subsystem."""

import numpy as np
import pytest

from repro.core import replicator_policy, simulate, uniform_policy
from repro.instances import braess_network, grid_network, two_link_network
from repro.largescale import ActivePathSet, simulate_with_column_generation
from repro.solvers import solve_wardrop_equilibrium
from repro.wardrop import FlowVector


def embed_on(network, result):
    """Express a column-generation final flow on the full network's index."""
    values = np.zeros(network.num_paths)
    final = result.final_flow.values()
    for i, path in enumerate(result.network.paths):
        values[network.paths.index_of(path)] = final[i]
    return values


class TestClosedSpecialCase:
    """A closed ActivePathSet reproduces the fixed-path-set dynamics exactly."""

    @pytest.mark.parametrize("policy_builder", [uniform_policy, replicator_policy])
    @pytest.mark.parametrize(
        "factory", [braess_network, lambda: grid_network(2, 3, num_commodities=1, seed=3)]
    )
    def test_closed_run_is_bit_identical_to_scalar_simulate(self, policy_builder, factory):
        network = factory()
        policy = policy_builder(network)
        closed = ActivePathSet.from_network(network, closed=True)
        assert closed.num_paths == network.num_paths
        result = simulate_with_column_generation(
            closed, policy, update_period=0.125, horizon=2.0, steps_per_phase=11
        )
        reference = simulate(
            network, policy, update_period=0.125, horizon=2.0, steps_per_phase=11
        )
        assert result.growth_events == []
        assert len(result.trajectory) == len(reference)
        for ours, theirs in zip(result.trajectory.points, reference.points):
            assert ours.time == theirs.time
            assert np.array_equal(ours.flow.values(), theirs.flow.values())
        assert len(result.trajectory.phases) == len(reference.phases)

    def test_closed_run_mirrors_the_board_refresh_quirk(self):
        """floor(t/T) occasionally skips a scalar board refresh; the closed
        column-generation loop must reproduce that phase for phase."""
        network = braess_network()
        policy = replicator_policy(network)
        # T=0.01 makes floor(phase*T / T) round down at some phase indices.
        closed = ActivePathSet.from_network(network, closed=True)
        result = simulate_with_column_generation(
            closed, policy, update_period=0.01, horizon=0.35, steps_per_phase=5
        )
        reference = simulate(
            network, policy, update_period=0.01, horizon=0.35, steps_per_phase=5
        )
        assert len(result.trajectory) == len(reference)
        for ours, theirs in zip(result.trajectory.points, reference.points):
            assert np.array_equal(ours.flow.values(), theirs.flow.values())

    def test_closed_set_never_augments(self):
        network = braess_network()
        closed = ActivePathSet.from_network(network, closed=True)
        costs = np.ones(closed.oracle.num_edges)
        assert closed.augment(costs) == []
        assert closed.version == 0


class TestGrowthSemantics:
    def test_seeds_are_free_flow_shortest_paths(self):
        network = braess_network()
        active = ActivePathSet.from_network(network)
        # Braess free-flow: the zero-latency shortcut path is the unique seed.
        assert active.num_paths == 1
        assert active.network.paths[0].describe() == "s->a->b->t"

    def test_columns_grow_only_at_refreshes_and_monotonically(self):
        network = grid_network(3, 3, num_commodities=2, seed=3)
        active = ActivePathSet.from_network(network)
        initial = active.num_paths
        result = simulate_with_column_generation(
            active, uniform_policy, update_period=0.125, horizon=5.0, steps_per_phase=10
        )
        assert result.network.num_paths >= initial
        assert result.path_counts == sorted(result.path_counts)
        phases = [phase for phase, _ in result.growth_events]
        assert phases == sorted(phases)
        assert result.total_columns_added == result.network.num_paths - initial
        # Every discovered column is a real path of the full enumeration.
        for _, paths in result.growth_events:
            for path in paths:
                assert path in network.paths

    def test_embedding_preserves_old_flows_and_zeroes_new_columns(self):
        network = grid_network(2, 3, num_commodities=1, seed=3)
        active = ActivePathSet.from_network(network)
        old_network = active.network
        values = FlowVector.uniform(old_network).values()
        # Posting the seed congestion makes an unknown route cheapest.
        added = active.augment(active.posted_costs(old_network, values))
        assert added, "seed congestion should reveal a new cheapest route"
        grown = active.network
        assert grown.num_paths == old_network.num_paths + len(added)
        embedded = active.embed(values, old_network, grown)
        assert embedded.sum() == pytest.approx(values.sum())
        for i, path in enumerate(old_network.paths):
            assert embedded[grown.paths.index_of(path)] == values[i]
        for path in added:
            assert embedded[grown.paths.index_of(path)] == 0.0


class TestFullEnumerationEquivalence:
    """On instances small enough to enumerate, the column-generation dynamics
    reproduce the full-enumeration final flows within 1e-6 (acceptance)."""

    @pytest.mark.parametrize(
        "factory, horizon",
        [
            (lambda: grid_network(2, 2, num_commodities=1, seed=3), 100.0),
            (lambda: grid_network(2, 3, num_commodities=1, seed=3), 120.0),
            (lambda: two_link_network(beta=4.0), 80.0),
        ],
    )
    def test_final_flows_match_full_enumeration(self, factory, horizon):
        network = factory()
        active = ActivePathSet.from_network(network)
        result = simulate_with_column_generation(
            active, uniform_policy, update_period=0.125, horizon=horizon,
            steps_per_phase=30,
        )
        full = simulate(
            network, uniform_policy(network), update_period=0.125, horizon=horizon,
            steps_per_phase=30,
        )
        embedded = embed_on(network, result)
        assert np.abs(embedded - full.final_flow.values()).max() < 1e-6
        # Both agree with the Frank--Wolfe ground truth on edge flows.
        equilibrium = solve_wardrop_equilibrium(network, tolerance=1e-12)
        eq_edges = network.edge_flows(equilibrium.flow.values())
        assert np.abs(network.edge_flows(embedded) - eq_edges).max() < 1e-5

    def test_runner_rejects_fixed_dimension_arguments_for_cg_cases(self):
        """SweepCase stop_when/initial_flow are sized for the fixed path set;
        the runner refuses them for column-generation cases with a clear
        error instead of a downstream broadcast crash."""
        from repro.analysis.sweeps import SweepCase
        from repro.batch.stopping import distance_stop
        from repro.experiments.runner import run_cases

        network = braess_network()
        policy = uniform_policy(network)
        builder = lambda trajectory: {"phases": len(trajectory.phases)}  # noqa: E731
        stoppy = SweepCase(
            {}, network, policy, 0.1, 1.0, column_generation=True,
            stop_when=distance_stop(np.full((1, network.num_paths), 1 / 3), 0.05),
        )
        with pytest.raises(ValueError, match="column-generation"):
            run_cases([stoppy], builder, engine="serial")
        seeded = SweepCase(
            {}, network, policy, 0.1, 1.0, column_generation=True,
            initial_flow=FlowVector.uniform(network),
        )
        with pytest.raises(ValueError, match="column-generation"):
            run_cases([seeded], builder, engine="serial")

    def test_stop_when_fires_at_phase_boundaries(self):
        network = two_link_network(beta=4.0)
        active = ActivePathSet.from_network(network)
        seen = []

        def stop(time, flow):
            seen.append(time)
            return len(seen) >= 3

        result = simulate_with_column_generation(
            active, uniform_policy, update_period=0.25, horizon=10.0, stop_when=stop,
        )
        assert len(result.trajectory.phases) == 3
        assert seen == [0.25, 0.5, 0.75]
