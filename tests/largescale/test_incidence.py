"""The dense/sparse incidence backends and the shared membership index."""

import numpy as np
import pytest

from repro.instances import braess_network, grid_network, sioux_falls_network
from repro.largescale import (
    DenseIncidence,
    SparseIncidence,
    build_incidence,
    have_scipy,
)
from repro.wardrop import WardropNetwork

requires_scipy = pytest.mark.skipif(not have_scipy(), reason="scipy not installed")


def build_both(network):
    dense = build_incidence(network.paths, network.edges, mode="dense")
    sparse = build_incidence(network.paths, network.edges, mode="sparse")
    return dense, sparse


class TestBackendAgreement:
    @requires_scipy
    @pytest.mark.parametrize("factory", [braess_network, lambda: grid_network(3, 3, num_commodities=2, seed=3)])
    def test_dense_and_sparse_products_agree(self, factory):
        network = factory()
        dense, sparse = build_both(network)
        assert isinstance(dense, DenseIncidence)
        assert isinstance(sparse, SparseIncidence)
        assert dense.shape == sparse.shape == (network.num_edges, network.num_paths)
        assert dense.nnz == sparse.nnz
        assert np.array_equal(dense.dense(), sparse.dense())
        rng = np.random.default_rng(7)
        flows = rng.random(network.num_paths)
        batch = rng.random((5, network.num_paths))
        values = rng.random(network.num_edges)
        batch_values = rng.random((5, network.num_edges))
        assert np.allclose(dense.edge_flows(flows), sparse.edge_flows(flows), atol=1e-13)
        assert np.allclose(
            dense.edge_flows_batch(batch), sparse.edge_flows_batch(batch), atol=1e-13
        )
        assert np.allclose(dense.path_totals(values), sparse.path_totals(values), atol=1e-13)
        assert np.allclose(
            dense.path_totals_batch(batch_values),
            sparse.path_totals_batch(batch_values),
            atol=1e-13,
        )

    @requires_scipy
    def test_sparse_scalar_and_batch_rows_are_bit_identical(self):
        """The CSR batch product must replay the scalar accumulation exactly."""
        network = grid_network(3, 3, num_commodities=2, seed=3)
        _, sparse = build_both(network)
        rng = np.random.default_rng(11)
        batch = rng.random((6, network.num_paths))
        batched = sparse.edge_flows_batch(batch)
        for row in range(6):
            assert np.array_equal(batched[row], sparse.edge_flows(batch[row]))
        batch_values = rng.random((6, network.num_edges))
        batched_totals = sparse.path_totals_batch(batch_values)
        for row in range(6):
            assert np.array_equal(batched_totals[row], sparse.path_totals(batch_values[row]))

    @requires_scipy
    def test_network_evaluation_matches_across_modes(self):
        base = braess_network()
        sparse_net = WardropNetwork(
            base.graph, base.commodities, normalise=False, incidence_mode="sparse"
        )
        rng = np.random.default_rng(3)
        flows = rng.random(base.num_paths)
        batch = rng.random((4, base.num_paths))
        assert np.allclose(base.edge_flows(flows), sparse_net.edge_flows(flows), atol=1e-13)
        assert np.allclose(
            base.path_latencies(flows), sparse_net.path_latencies(flows), atol=1e-12
        )
        assert np.allclose(
            base.path_latencies_batch(batch),
            sparse_net.path_latencies_batch(batch),
            atol=1e-12,
        )
        assert np.array_equal(base.incidence, sparse_net.incidence)


class TestSharedMembership:
    def test_paths_through_matches_brute_force(self):
        network = grid_network(3, 3, num_commodities=2, seed=3)
        paths = network.paths
        for edge in network.edges:
            expected = [i for i, path in enumerate(paths) if edge in path.edges]
            assert paths.paths_through(edge) == expected

    def test_membership_is_built_once_and_shared(self):
        network = braess_network()
        paths = network.paths
        first = paths.edge_membership()
        assert paths.edge_membership() is first  # cached, no per-call scan
        # The incidence matrix consumes the same membership map.
        for edge, indices in first.items():
            column = network.incidence[network.edge_index(edge)]
            assert np.array_equal(np.flatnonzero(column), indices)

    def test_paths_through_unknown_edge_is_empty(self):
        network = braess_network()
        assert network.paths.paths_through(("nope", "nowhere", 0)) == []


class TestModeSelection:
    @requires_scipy
    def test_sioux_falls_uses_the_sparse_backend(self):
        network = sioux_falls_network()
        assert isinstance(network.incidence_operator, SparseIncidence)

    def test_small_instances_stay_dense_in_auto_mode(self):
        network = braess_network()
        assert isinstance(network.incidence_operator, DenseIncidence)

    def test_unknown_mode_rejected(self):
        network = braess_network()
        with pytest.raises(ValueError, match="incidence mode"):
            build_incidence(network.paths, network.edges, mode="csr")
