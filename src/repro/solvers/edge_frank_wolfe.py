"""Edge-flow Frank--Wolfe: equilibrium computation without a path set.

The classical path-based solver (:mod:`repro.solvers.frank_wolfe`) needs the
enumerated path sets to express flows, which confines it to toy instances.
This module solves the same Beckmann minimisation directly in *edge-flow*
space: the state is one number per graph edge, the descent direction comes
from the all-or-nothing oracle (one Dijkstra per origin, loading every
commodity's demand onto its cheapest path), and convergence is certified by
the standard *relative duality gap* ``TSTT / SPTT - 1`` of the traffic
assignment literature.  Nothing in the solver ever enumerates a path, so
Sioux Falls-scale road networks (hundreds of OD pairs) solve in a few dozen
iterations.

The path-based solver remains the ground truth on enumerable instances; the
equivalence test asserts both produce the same edge flows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..largescale.shortest import ShortestPathOracle
from ..telemetry.runtime import get_telemetry
from ..wardrop.network import WardropNetwork
from .line_search import bisection_root


@dataclass(frozen=True)
class EdgeEquilibriumResult:
    """The output of the edge-flow Frank--Wolfe solver.

    Attributes
    ----------
    edge_flows:
        The equilibrium edge flows, indexed by ``oracle.edges`` (all graph
        edges, not just on-path ones).
    potential_value:
        The Beckmann potential ``sum_e int_0^{f_e} l_e``.
    relative_gap:
        The final relative duality gap ``TSTT / SPTT - 1``.
    tstt / sptt:
        Total and shortest-path system travel time at the returned flows (in
        the instance's normalised units; multiply by the raw total demand to
        recover TNTP units).
    iterations / converged / gap_history:
        Iteration diagnostics, mirroring the path-based solver.
    """

    edge_flows: np.ndarray
    potential_value: float
    relative_gap: float
    tstt: float
    sptt: float
    iterations: int
    converged: bool
    gap_history: List[float]


def edge_potential(network: WardropNetwork, oracle: ShortestPathOracle, edge_flows: np.ndarray) -> float:
    """Return the Beckmann potential of an oracle-order edge-flow vector."""
    return float(
        sum(
            network.latency_function(edge).integral(edge_flows[i])
            for i, edge in enumerate(oracle.edges)
        )
    )


def relative_duality_gap(
    network: WardropNetwork,
    oracle: ShortestPathOracle,
    edge_flows: np.ndarray,
) -> float:
    """Return ``TSTT / SPTT - 1`` of an edge-flow vector (0 at equilibrium)."""
    costs = oracle.latency_costs(network, edge_flows)
    load = oracle.all_or_nothing(costs)
    tstt = float(np.dot(costs, edge_flows))
    return tstt / load.sptt - 1.0


def solve_edge_flow_equilibrium(
    network: WardropNetwork,
    tolerance: float = 1e-6,
    max_iterations: int = 2000,
    oracle: Optional[ShortestPathOracle] = None,
    initial_edge_flows: Optional[np.ndarray] = None,
) -> EdgeEquilibriumResult:
    """Compute the Wardrop equilibrium in edge-flow space by Frank--Wolfe.

    Parameters
    ----------
    network:
        The instance; only its graph, commodities and latency functions are
        used -- the (possibly restricted) path set is never touched.
    tolerance:
        Target *relative* duality gap ``TSTT / SPTT - 1``.
    max_iterations:
        Iteration cap; the result reports whether it was hit.
    oracle:
        Optional pre-built :class:`ShortestPathOracle` (reused across calls
        by the benchmarks); built from the network's graph, commodities and
        ``first_thru_node`` metadata otherwise.
    initial_edge_flows:
        Optional warm start (oracle edge order); defaults to the
        all-or-nothing flow at free-flow costs, the classical initialiser.
    """
    if oracle is None:
        oracle = ShortestPathOracle.for_network(network)
    if initial_edge_flows is None:
        flows = oracle.all_or_nothing(oracle.free_flow_costs(network)).edge_flows
    else:
        flows = np.asarray(initial_edge_flows, dtype=float).copy()
        if flows.shape != (oracle.num_edges,):
            raise ValueError(
                f"initial edge flows have shape {flows.shape}, "
                f"expected ({oracle.num_edges},)"
            )

    functions = [network.latency_function(edge) for edge in oracle.edges]
    tele = get_telemetry()
    run_span = tele.span(
        "engine_run",
        engine="edge-fw",
        edges=oracle.num_edges,
        tolerance=tolerance,
        state_bytes=flows.nbytes,
    )
    gap_series = tele.series_of("fw.relative_gap")
    iteration_counter = tele.counter("fw.iterations")
    solve_start = time.perf_counter() if tele.enabled else 0.0
    gap_history: List[float] = []
    converged = False
    iterations = 0
    relative_gap = np.inf
    costs = oracle.latency_costs(network, flows)
    tstt = float(np.dot(costs, flows))
    sptt = tstt
    for iterations in range(1, max_iterations + 1):
        iteration_span = tele.span("fw_iteration", index=iterations)
        load = oracle.all_or_nothing(costs)
        tstt = float(np.dot(costs, flows))
        sptt = load.sptt
        relative_gap = tstt / sptt - 1.0
        gap_history.append(relative_gap)
        if tele.enabled:
            # The gap-vs-wall-time curve is a first-class trace artefact:
            # `repro report` plots solver progress from this series alone.
            gap_series.append(time.perf_counter() - solve_start, relative_gap)
            iteration_span.annotate(gap=relative_gap)
        iteration_counter.add()
        if relative_gap <= tolerance:
            converged = True
            iteration_span.close()
            break
        direction = load.edge_flows - flows

        def potential_slope(step: float) -> float:
            """Directional derivative of the Beckmann potential at ``step``."""
            point = flows + step * direction
            return float(
                sum(
                    functions[i].value(point[i]) * direction[i]
                    for i in range(len(direction))
                    if direction[i] != 0.0
                )
            )

        step = bisection_root(potential_slope, 0.0, 1.0)
        if step <= 0.0:
            # Stalled exact line search: fall back to the 2/(k+2) schedule.
            step = 2.0 / (iterations + 2.0)
        flows = flows + step * direction
        costs = oracle.latency_costs(network, flows)
        iteration_span.close()
    run_span.annotate(iterations=iterations, converged=converged, gap=float(relative_gap))
    run_span.close()
    tele.counter("fw.runs").add()
    return EdgeEquilibriumResult(
        edge_flows=flows,
        potential_value=edge_potential(network, oracle, flows),
        relative_gap=float(relative_gap),
        tstt=tstt,
        sptt=float(sptt),
        iterations=iterations,
        converged=converged,
        gap_history=gap_history,
    )
