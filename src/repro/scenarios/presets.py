"""Named scenario presets for the CLI, benchmarks and examples.

A preset is a *builder* ``network -> Scenario``: some presets inspect the
instance (e.g. to find the busiest link for an incident), so scenarios are
instantiated against a concrete network.  The catalogue:

* ``morning-peak`` -- a trapezoidal demand ramp: the total demand rate climbs
  to 1.5x between ``t = 5`` and ``t = 15`` and subsides again, the classic
  peak/off-peak profile of traffic-assignment practice.
* ``braess-closure`` -- the Braess shortcut closes during ``t in [10, 20)``:
  the dynamics must migrate from the all-on-shortcut equilibrium (latency 2)
  to the no-shortcut split (latency 3/2) and back -- the Braess paradox as a
  live event.  Requires the ``braess`` instance (or any graph with the
  ``a -> b`` shortcut edge).
* ``sioux-falls-incident`` -- a capacity drop to 40% on the busiest link
  (most loaded under free-flow all-or-nothing assignment) during
  ``t in [4, 10)``.  Works on any instance with a shortest-path-reachable
  graph; named for its intended Sioux Falls workload.

Use :func:`register_scenario` to add project-specific presets.
"""

from __future__ import annotations

from typing import Callable, Dict, List

import numpy as np

from ..wardrop.network import WardropNetwork
from .incidents import LinkIncident
from .scenario import Scenario
from .schedule import peak_schedule

ScenarioBuilder = Callable[[WardropNetwork], Scenario]


def _morning_peak(network: WardropNetwork) -> Scenario:
    return Scenario(
        name="morning-peak",
        demand=peak_schedule(base=1.0, peak=1.5, start=5.0, end=15.0, ramp=5.0),
    )


def _braess_closure(network: WardropNetwork) -> Scenario:
    edge = ("a", "b", 0)
    if not network.graph.has_edge(*edge):
        raise ValueError(
            "the braess-closure scenario needs the Braess shortcut edge "
            "('a', 'b'); run it on the 'braess' instance"
        )
    return Scenario(
        name="braess-closure",
        incidents=[
            LinkIncident(edge=edge, start=10.0, end=20.0, capacity_factor=0.0, closure_penalty=10.0)
        ],
    )


def _busiest_link(network: WardropNetwork):
    """Return the most-loaded graph edge under free-flow all-or-nothing."""
    from ..largescale.shortest import ShortestPathOracle

    oracle = ShortestPathOracle.for_network(network)
    load = oracle.all_or_nothing(oracle.free_flow_costs(network))
    return oracle.edges[int(np.argmax(load.edge_flows))]


def _sioux_falls_incident(network: WardropNetwork) -> Scenario:
    return Scenario(
        name="sioux-falls-incident",
        incidents=[
            LinkIncident(
                edge=_busiest_link(network),
                start=4.0,
                end=10.0,
                capacity_factor=0.4,
            )
        ],
    )


_REGISTRY: Dict[str, ScenarioBuilder] = {
    "morning-peak": _morning_peak,
    "braess-closure": _braess_closure,
    "sioux-falls-incident": _sioux_falls_incident,
}


def register_scenario(name: str, builder: ScenarioBuilder, overwrite: bool = False) -> None:
    """Register a new named scenario builder."""
    if name in _REGISTRY and not overwrite:
        raise ValueError(f"scenario {name!r} is already registered")
    _REGISTRY[name] = builder


def get_scenario(name: str, network: WardropNetwork) -> Scenario:
    """Build the registered scenario ``name`` against ``network``."""
    try:
        builder = _REGISTRY[name]
    except KeyError as error:
        raise KeyError(
            f"unknown scenario {name!r}; available: {', '.join(sorted(_REGISTRY))}"
        ) from error
    return builder(network)


def available_scenarios() -> List[str]:
    """Return the sorted list of registered scenario names."""
    return sorted(_REGISTRY)
