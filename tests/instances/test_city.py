"""The synthetic city generator and the dynamic ``tntp:`` instance loader."""

import numpy as np
import pytest

from repro.instances import (
    available_instances,
    city_tntp_text,
    get_instance,
    synthetic_city_network,
)
from repro.instances.city import (
    ARTERIAL_CAPACITY,
    STREET_CAPACITY,
    _periphery_nodes,
)
from repro.instances.tntp import parse_tntp_network, parse_tntp_trips
from repro.largescale import ShortestPathOracle, have_scipy


class TestCityTntpText:
    def test_default_city_is_road_network_scale(self):
        net_text, trips_text = city_tntp_text()
        metadata, links = parse_tntp_network(net_text)
        assert len(links) == 4 * 16 * 15 == 960
        assert int(metadata["NUMBER OF NODES"]) == 256
        assert int(metadata["FIRST THRU NODE"]) == 1
        _, demands = parse_tntp_trips(trips_text)
        assert len(demands) == 12

    def test_arterial_links_follow_the_grid_pattern(self):
        net_text, _ = city_tntp_text(blocks=8, arterial_every=4)
        _, links = parse_tntp_network(net_text)
        by_capacity = {}
        for link in links:
            by_capacity.setdefault(link.capacity, 0)
            by_capacity[link.capacity] += 1
        # 8 blocks / arterial_every=4 -> 2 arterial rows and 2 arterial
        # columns, each with 2*(blocks-1) directed links.
        assert by_capacity[ARTERIAL_CAPACITY] == 2 * 2 * 2 * 7
        assert by_capacity[STREET_CAPACITY] == 4 * 8 * 7 - by_capacity[ARTERIAL_CAPACITY]

    def test_declared_total_matches_the_rows(self):
        _, trips_text = city_tntp_text(blocks=4, arterial_every=2, od_pairs=5)
        _, demands = parse_tntp_trips(trips_text)  # parser cross-checks the total
        assert len(demands) == 5
        assert all(volume > 0 for volume in demands.values())

    def test_od_pairs_sit_on_the_periphery(self):
        _, trips_text = city_tntp_text(blocks=6, arterial_every=3, od_pairs=8)
        periphery = set(_periphery_nodes(6))
        for (origin, destination) in parse_tntp_trips(trips_text)[1]:
            assert origin in periphery
            assert destination in periphery
            assert origin != destination

    def test_generation_is_deterministic_in_the_seed(self):
        assert city_tntp_text(seed=3) == city_tntp_text(seed=3)
        assert city_tntp_text(seed=3)[1] != city_tntp_text(seed=4)[1]

    def test_bad_parameters_rejected(self):
        with pytest.raises(ValueError, match="blocks"):
            city_tntp_text(blocks=1)
        with pytest.raises(ValueError, match="arterial_every"):
            city_tntp_text(arterial_every=0)
        with pytest.raises(ValueError, match="od_pairs"):
            city_tntp_text(od_pairs=0)
        with pytest.raises(ValueError, match="periphery"):
            city_tntp_text(blocks=2, od_pairs=100)


class TestSyntheticCityNetwork:
    def test_network_loads_through_the_tntp_path(self):
        network = synthetic_city_network(blocks=4, arterial_every=2, od_pairs=4)
        assert network.graph.number_of_edges() == 4 * 4 * 3
        assert network.num_commodities == 4
        # One free-flow shortest-path seed per commodity, like any TNTP load.
        assert network.num_paths == 4
        assert network.graph.graph["name"] == "city-grid-4x4"
        assert network.graph.graph["first_thru_node"] == 1

    def test_seeds_are_free_flow_shortest_paths(self):
        network = synthetic_city_network(blocks=4, arterial_every=2, od_pairs=4)
        oracle = ShortestPathOracle.for_network(network)
        seeds = oracle.shortest_commodity_paths(oracle.free_flow_costs(network))
        assert list(network.paths) == seeds

    def test_round_trips_through_temp_tntp_files(self, tmp_path):
        from repro.instances import load_tntp_instance

        net_text, trips_text = city_tntp_text(blocks=4, arterial_every=2, od_pairs=4)
        net_file = tmp_path / "city_net.tntp"
        trips_file = tmp_path / "city_trips.tntp"
        net_file.write_text(net_text)
        trips_file.write_text(trips_text)
        loaded = load_tntp_instance(net_file, trips_file, name="disk-city")
        generated = synthetic_city_network(blocks=4, arterial_every=2, od_pairs=4)
        assert loaded.graph.number_of_edges() == generated.graph.number_of_edges()
        assert [c.demand for c in loaded.commodities] == [
            c.demand for c in generated.commodities
        ]
        assert list(loaded.paths) == list(generated.paths)


class TestRegistryIntegration:
    def test_city_names_are_registered(self):
        names = available_instances()
        assert "city-grid" in names
        assert "city-grid-mini" in names

    def test_city_grid_mini_shape(self):
        network = get_instance("city-grid-mini")
        assert network.graph.number_of_edges() == 4 * 4 * 3
        assert network.num_commodities == 4

    def test_dynamic_tntp_loader(self, tmp_path):
        net_text, trips_text = city_tntp_text(blocks=4, arterial_every=2, od_pairs=3)
        net_file = tmp_path / "net.tntp"
        trips_file = tmp_path / "trips.tntp"
        net_file.write_text(net_text)
        trips_file.write_text(trips_text)
        network = get_instance(f"tntp:{net_file},{trips_file}")
        assert network.graph.number_of_edges() == 4 * 4 * 3
        assert network.num_commodities == 3

    def test_malformed_dynamic_spec_rejected(self):
        with pytest.raises(KeyError, match="tntp:"):
            get_instance("tntp:only_one_path.tntp")

    def test_unknown_name_mentions_the_dynamic_form(self):
        with pytest.raises(KeyError, match="tntp:"):
            get_instance("no-such-instance")


@pytest.mark.skipif(not have_scipy(), reason="scipy not installed")
class TestCityBackendTier:
    def test_city_uses_sparse_incidence_and_scipy_oracle(self):
        from repro.largescale import SparseIncidence

        network = synthetic_city_network(blocks=8, arterial_every=4, od_pairs=6)
        assert isinstance(network.incidence_operator, SparseIncidence)
        oracle = ShortestPathOracle.for_network(network)
        assert oracle.backend == "scipy"

    def test_default_city_keeps_mild_equilibrium_congestion(self):
        from repro.solvers import solve_edge_flow_equilibrium

        network = synthetic_city_network(blocks=8, arterial_every=4, od_pairs=6)
        result = solve_edge_flow_equilibrium(network, tolerance=1e-3)
        assert result.relative_gap <= 1e-3
        assert np.all(np.isfinite(result.edge_flows))
