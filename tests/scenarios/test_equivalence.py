"""Scenario equivalence: manual-restart bit-identity and batch/scalar bit-identity.

Two contracts anchor the scenario layer:

1. A piecewise-constant schedule applied through the scenario layer is
   *bit-identical* to manually restarting the stationary scalar simulator
   with the rescaled environment at every breakpoint (breakpoints aligned to
   phase boundaries; the restart carries the end flow over).
2. A batched run whose rows carry (different) scenarios reproduces each
   row's scalar ``simulate(..., scenario=...)`` trajectory bit for bit, in
   both information models.
"""

import numpy as np
import pytest

from repro.batch.engine import simulate_batch
from repro.core import scaled_policy, simulate, simulate_agents, uniform_policy
from repro.instances import braess_network, pigou_network, two_link_network
from repro.scenarios import (
    LinkIncident,
    PiecewiseConstantSchedule,
    PiecewiseLinearSchedule,
    Scenario,
)
from repro.wardrop.flow import FlowVector

T = 0.25  # breakpoints below are exact multiples, so phase grids align


def phase_end_flows(trajectory):
    return np.array([point.flow.values() for point in trajectory.points])


class TestManualRestartEquivalence:
    def test_piecewise_constant_demand_matches_manual_restarts(self):
        """Scenario-layer demand steps == stationary runs glued by hand."""
        network = braess_network()
        policy = scaled_policy(0.2)  # network-independent, reusable across segments
        scenario = Scenario(
            demand=PiecewiseConstantSchedule([1.0, 2.0], [1.0, 1.4, 0.8])
        )
        via_scenario = simulate(
            network, policy, update_period=T, horizon=3.0,
            scenario=scenario, steps_per_phase=20,
        )

        # Manual restarts: one stationary run per constant interval, on the
        # interval's effective network, starting from the previous end flow.
        segments = [(0.0, 1.0), (1.0, 2.0), (2.0, 3.0)]
        manual_samples = []
        carry = None
        for start, end in segments:
            effective = scenario.network_at(network, start)
            initial = None if carry is None else FlowVector(effective, carry, validate=False)
            trajectory = simulate(
                effective, policy, update_period=T, horizon=end - start,
                initial_flow=initial, steps_per_phase=20,
            )
            flows = phase_end_flows(trajectory)
            if carry is None:
                manual_samples.append(flows)
            else:
                manual_samples.append(flows[1:])  # drop the duplicated start
            carry = flows[-1]
        manual = np.vstack(manual_samples)

        np.testing.assert_array_equal(phase_end_flows(via_scenario), manual)

    def test_stationary_scenario_is_a_no_op(self):
        network = pigou_network(degree=2)
        policy = uniform_policy(network)
        scenario = Scenario(demand=PiecewiseConstantSchedule([], [1.0]))
        plain = simulate(network, policy, update_period=0.1, horizon=2.0)
        wrapped = simulate(
            network, policy, update_period=0.1, horizon=2.0, scenario=scenario
        )
        np.testing.assert_array_equal(phase_end_flows(plain), phase_end_flows(wrapped))


SCENARIO_BUILDERS = {
    "demand-step": lambda: Scenario(
        demand=PiecewiseConstantSchedule([1.0], [1.0, 1.3])
    ),
    "demand-ramp": lambda: Scenario(
        demand=PiecewiseLinearSchedule([0.0, 1.5, 3.0], [1.0, 1.5, 1.0])
    ),
    "closure": lambda: Scenario(
        incidents=[
            LinkIncident(("a", "b", 0), 0.75, 2.0, capacity_factor=0.0, closure_penalty=5.0)
        ]
    ),
    "late-drop": lambda: Scenario(
        incidents=[LinkIncident(("s", "a", 0), 1.5, 2.5, capacity_factor=0.5)]
    ),
}


class TestBatchScalarEquivalence:
    @pytest.mark.parametrize("stale", [True, False], ids=["stale", "fresh"])
    @pytest.mark.parametrize("method", ["rk4", "euler"])
    def test_mixed_scenario_rows_bit_identical(self, stale, method):
        network = braess_network()
        policy = uniform_policy(network)
        scenarios = [None] + [build() for build in SCENARIO_BUILDERS.values()]
        batch = len(scenarios)
        periods = np.array([0.25, 0.25, 0.2, 0.25, 0.25])
        result = simulate_batch(
            network, policy,
            update_periods=periods, horizons=3.0, scenarios=scenarios,
            stale=stale, steps_per_phase=10, method=method,
        )
        for row, scenario in enumerate(scenarios):
            trajectory = simulate(
                network, policy, update_period=float(periods[row]), horizon=3.0,
                scenario=scenario, stale=stale, steps_per_phase=10, method=method,
            )
            scalar = phase_end_flows(trajectory)
            batched = result.flow_matrix(row)
            assert scalar.shape == batched.shape
            np.testing.assert_array_equal(scalar, batched, err_msg=f"row {row}")

    def test_shared_scenario_broadcasts(self):
        network = two_link_network(beta=2.0)
        policy = uniform_policy(network)
        scenario = Scenario(demand=PiecewiseConstantSchedule([0.5], [1.0, 1.5]))
        result = simulate_batch(
            network, policy, update_periods=[0.1, 0.1], horizons=1.0,
            scenarios=scenario, steps_per_phase=10,
        )
        np.testing.assert_array_equal(result.flow_matrix(0), result.flow_matrix(1))
        trajectory = simulate(
            network, policy, update_period=0.1, horizon=1.0,
            scenario=scenario, steps_per_phase=10,
        )
        np.testing.assert_array_equal(phase_end_flows(trajectory), result.flow_matrix(0))

    def test_scenario_count_mismatch_rejected(self):
        network = two_link_network(beta=2.0)
        policy = uniform_policy(network)
        with pytest.raises(ValueError):
            simulate_batch(
                network, policy, update_periods=[0.1, 0.1], horizons=1.0,
                scenarios=[None, None, None],
            )


class TestAgentEngine:
    def test_stationary_scenario_reproduces_plain_run(self):
        network = braess_network()
        policy = uniform_policy(network)
        scenario = Scenario(demand=PiecewiseConstantSchedule([], [1.0]))
        plain = simulate_agents(
            network, policy, num_agents=200, update_period=0.25, horizon=2.0, seed=11,
        )
        wrapped = simulate_agents(
            network, policy, num_agents=200, update_period=0.25, horizon=2.0, seed=11,
            scenario=scenario,
        )
        np.testing.assert_array_equal(phase_end_flows(plain), phase_end_flows(wrapped))

    def test_demand_step_changes_behaviour_not_randomness(self):
        """The randomness schedule is scenario-independent: runs with and
        without a demand step share every activation, so they diverge only
        after the step's breakpoint."""
        network = pigou_network(degree=1)
        policy = uniform_policy(network)
        scenario = Scenario(demand=PiecewiseConstantSchedule([1.0], [1.0, 1.8]))
        plain = simulate_agents(
            network, policy, num_agents=500, update_period=0.25, horizon=2.0, seed=3,
        )
        stepped = simulate_agents(
            network, policy, num_agents=500, update_period=0.25, horizon=2.0, seed=3,
            scenario=scenario,
        )
        plain_flows = phase_end_flows(plain)
        stepped_flows = phase_end_flows(stepped)
        # identical before the step (samples 0..4 cover t <= 1.0; the phase
        # starting at t=1.0 is the first to see the new environment)
        np.testing.assert_array_equal(plain_flows[:5], stepped_flows[:5])
        assert not np.array_equal(plain_flows[5:], stepped_flows[5:])
