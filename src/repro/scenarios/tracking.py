"""Equilibrium tracking: ground truth and metrics for moving equilibria.

Under a nonstationary scenario the Wardrop equilibrium itself moves: every
interval between scenario breakpoints has its own *instantaneous* equilibrium
(the equilibrium of the environment frozen on that interval).  The paper's
convergence guarantees then become *tracking* statements -- how closely, and
how quickly after each breakpoint, do the stale-information dynamics chase
the moving target?

This module computes the ground truth and the three tracking metrics:

* :func:`interval_equilibria` solves one equilibrium per scenario interval,
  reusing the path-based Frank--Wolfe solver on enumerable instances and the
  edge-flow (oracle-driven) solver on road networks,
* :func:`tracking_error` measures the L1 distance of a trajectory to the
  instantaneous equilibrium over time,
* :func:`time_to_reequilibrate` measures how long after a breakpoint the
  error needs to re-enter a tolerance band,
* :func:`tracking_regret` integrates the *Beckmann-potential* excess over
  the instantaneous optimum.  The instantaneous equilibrium minimises the
  Beckmann potential of its interval's environment, so this gap is
  non-negative (up to solver tolerance) -- unlike the average-latency
  excess, which can be negative away from equilibrium (Pigou's example: the
  equilibrium is not the social optimum).

Solving is cached by *modulation*: a 32-row incident-timing sweep whose rows
share the same incident magnitude needs exactly two equilibrium solves
(nominal and incident-active), not ``2 * 32``.  The cache key includes the
identity of the base network (entries pin their network, so ids stay valid
for the cache's lifetime): rows of a heterogeneous-coefficient family may
share one cache without one network's equilibrium answering for another's.

Ground-truth solves accept the accelerated methods of
:mod:`repro.solvers.options` (``method="cfw"`` / ``"bfw"`` in edge space,
``"pg"`` in path space) and *warm-start* by default: each interval's solve
is seeded from the previous interval's equilibrium, which typically cuts the
iteration count sharply because consecutive environments are close.
``EquilibriumTrack.total_iterations`` reports the summed solver work, the
quantity the warm-start acceptance benchmark pins.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..core.trajectory import Trajectory
from ..largescale.shortest import ShortestPathOracle
from ..solvers.edge_frank_wolfe import solve_edge_flow_equilibrium
from ..solvers.frank_wolfe import solve_wardrop_equilibrium
from ..solvers.options import check_method
from ..wardrop.flow import FlowVector
from ..wardrop.network import WardropNetwork
from .scenario import Modulation, Scenario

# Path-space Frank--Wolfe enumerates over the instance's path set; beyond
# this many paths (or on restricted road instances) the edge-flow solver is
# the right ground truth.
AUTO_PATH_SPACE_LIMIT = 200


@dataclass(frozen=True)
class IntervalEquilibrium:
    """The ground-truth equilibrium of one scenario interval.

    ``flow_values`` is the path-space equilibrium (``None`` in edge space);
    ``edge_flows`` is the oracle-order edge-flow equilibrium (``None`` in
    path space).  ``average_latency`` is the equilibrium's average latency in
    the interval's effective environment (normalised TSTT); ``potential`` is
    its Beckmann potential, the reference :func:`tracking_regret` subtracts.
    ``iterations`` counts the solver iterations this entry cost (0 when it
    came from the cache).
    """

    modulation: Modulation
    flow_values: Optional[np.ndarray]
    edge_flows: Optional[np.ndarray]
    average_latency: float
    potential: float
    converged: bool
    iterations: int = 0


@dataclass
class EquilibriumTrack:
    """Per-interval equilibria of one (network, scenario, horizon) triple.

    ``times[i]`` is the start of interval ``i``; interval ``i`` covers
    ``[times[i], times[i+1])`` (the last one runs to the horizon).
    """

    network: WardropNetwork
    scenario: Scenario
    space: str
    times: np.ndarray
    equilibria: List[IntervalEquilibrium]
    oracle: Optional[ShortestPathOracle] = None
    solves: int = field(default=0)
    method: str = "fw"
    total_iterations: int = field(default=0)

    def index_at(self, t: float) -> int:
        """Return the interval index containing time ``t``."""
        return int(np.clip(np.searchsorted(self.times, t, side="right") - 1, 0, len(self.times) - 1))

    def equilibrium_at(self, t: float) -> IntervalEquilibrium:
        return self.equilibria[self.index_at(t)]


def _solve_interval(
    network: WardropNetwork,
    effective: WardropNetwork,
    modulation: Modulation,
    space: str,
    tolerance: float,
    oracle: Optional[ShortestPathOracle],
    method: str = "fw",
    max_iterations: int = 2000,
    seed: Optional[IntervalEquilibrium] = None,
) -> IntervalEquilibrium:
    """Solve one interval's equilibrium, optionally seeded from ``seed``.

    ``seed`` is the previous interval's equilibrium: demands never change
    across intervals (scenarios modulate latencies, not commodity demands),
    so the previous solution is feasible in the new environment and usually
    very close to its equilibrium.
    """
    if space == "path":
        initial = None
        if seed is not None and seed.flow_values is not None:
            initial = FlowVector(effective, seed.flow_values, validate=False)
        result = solve_wardrop_equilibrium(
            effective, tolerance=tolerance, max_iterations=max_iterations,
            initial=initial, method=method,
        )
        return IntervalEquilibrium(
            modulation=modulation,
            flow_values=result.flow.values(),
            edge_flows=None,
            average_latency=float(result.flow.average_latency()),
            potential=float(result.potential_value),
            converged=result.converged,
            iterations=result.iterations,
        )
    initial_edge_flows = seed.edge_flows if seed is not None else None
    result = solve_edge_flow_equilibrium(
        effective, tolerance=tolerance, max_iterations=max_iterations,
        oracle=oracle, initial_edge_flows=initial_edge_flows, method=method,
    )
    return IntervalEquilibrium(
        modulation=modulation,
        flow_values=None,
        edge_flows=result.edge_flows,
        average_latency=float(result.tstt),
        potential=float(result.potential_value),
        converged=result.converged,
        iterations=result.iterations,
    )


def interval_equilibria(
    network: WardropNetwork,
    scenario: Scenario,
    horizon: float,
    space: str = "auto",
    tolerance: float = 1e-6,
    sample_every: Optional[float] = None,
    oracle: Optional[ShortestPathOracle] = None,
    cache: Optional[Dict] = None,
    method: str = "fw",
    warm_start: bool = True,
    max_iterations: int = 2000,
) -> EquilibriumTrack:
    """Solve the instantaneous equilibrium of every scenario interval.

    Parameters
    ----------
    network:
        The base (stationary) instance.
    scenario / horizon:
        The nonstationary environment and the time range ``[0, horizon)``.
    space:
        ``"path"`` (path-based solvers on the enumerated path set),
        ``"edge"`` (oracle-driven edge-flow solvers over the full graph)
        or ``"auto"`` (path space up to :data:`AUTO_PATH_SPACE_LIMIT` paths).
    sample_every:
        Optional extra grid spacing: continuous profiles (piecewise-linear
        ramps, periodic peaks) move between breakpoints, so a finite grid
        refines the piecewise-constant ground-truth approximation.
    oracle:
        Optional pre-built shortest-path oracle (edge space), shared across
        rows by the benchmark.
    cache:
        Optional dict shared across calls: equilibria are memoised by
        ``(network identity, modulation, space, tolerance, method)``, so
        sweeps whose rows revisit the same environment states (e.g. the same
        incident at different times) solve each distinct state once.  Each
        entry stores its network alongside the equilibrium, pinning the
        object so its id stays valid for the cache's lifetime.
    method:
        Solver method for every interval: ``"fw"`` / ``"cfw"`` / ``"bfw"``
        in edge space, ``"fw"`` / ``"pg"`` in path space (validated after
        ``"auto"`` resolution).
    warm_start:
        Seed each cache-missing solve from the previous interval's
        equilibrium (default).  Demands are interval-invariant, so the seed
        is always feasible; ``False`` forces cold starts (the baseline the
        warm-start benchmark compares against).
    max_iterations:
        Per-interval solver iteration budget.
    """
    if horizon <= 0:
        raise ValueError("horizon must be positive")
    if space == "auto":
        space = "path" if network.num_paths <= AUTO_PATH_SPACE_LIMIT else "edge"
    if space not in ("path", "edge"):
        raise ValueError(f"unknown tracking space {space!r}; use 'path', 'edge' or 'auto'")
    check_method(method, space)
    if space == "edge" and oracle is None:
        oracle = ShortestPathOracle.for_network(network)
    times = {0.0}
    times.update(scenario.breakpoints(0.0, horizon))
    if sample_every is not None:
        if sample_every <= 0:
            raise ValueError("sample_every must be positive")
        times.update(np.arange(0.0, horizon, sample_every).tolist())
    ordered = np.array(sorted(times))
    cache = cache if cache is not None else {}
    equilibria: List[IntervalEquilibrium] = []
    solves = 0
    total_iterations = 0
    for t in ordered:
        modulation = scenario.modulation_at(float(t))
        key = (id(network), modulation, space, tolerance, method)
        entry = cache.get(key)
        if entry is None:
            effective = scenario.network_at(network, float(t))
            seed = equilibria[-1] if warm_start and equilibria else None
            equilibrium = _solve_interval(
                network, effective, modulation, space, tolerance, oracle,
                method=method, max_iterations=max_iterations, seed=seed,
            )
            cache[key] = (network, equilibrium)
            solves += 1
            total_iterations += equilibrium.iterations
        else:
            _, equilibrium = entry
        equilibria.append(equilibrium)
    return EquilibriumTrack(
        network=network,
        scenario=scenario,
        space=space,
        times=ordered,
        equilibria=equilibria,
        oracle=oracle,
        solves=solves,
        method=method,
        total_iterations=total_iterations,
    )


def tracking_error(trajectory: Trajectory, track: EquilibriumTrack) -> Tuple[np.ndarray, np.ndarray]:
    """Return ``(times, errors)``: L1 distance to the moving equilibrium.

    Path-space tracks compare path flows directly; edge-space tracks compare
    the trajectory's edge flows (expanded to the oracle's full edge order)
    with the edge-flow equilibrium.  Evaluated at every recorded trajectory
    point.
    """
    network = track.network
    times = np.array([point.time for point in trajectory.points])
    errors = np.empty(len(times))
    positions = None
    if track.space == "edge":
        positions = track.oracle.network_edge_positions(network)
    for i, point in enumerate(trajectory.points):
        reference = track.equilibrium_at(float(times[i]))
        if track.space == "path":
            errors[i] = float(np.abs(point.flow.values() - reference.flow_values).sum())
        else:
            full = np.zeros(track.oracle.num_edges)
            full[positions] = network.edge_flows(point.flow.values())
            errors[i] = float(np.abs(full - reference.edge_flows).sum())
    return times, errors


def time_to_reequilibrate(
    times: np.ndarray,
    errors: np.ndarray,
    breakpoint_time: float,
    tolerance: float,
) -> float:
    """Return how long after ``breakpoint_time`` the error re-enters ``tolerance``.

    Measured on the sample grid: the first recorded time ``>= breakpoint_time``
    with ``error <= tolerance``, minus the breakpoint.  ``inf`` if the error
    never recovers within the recorded range.
    """
    after = (times >= breakpoint_time) & (errors <= tolerance)
    if not after.any():
        return float("inf")
    return float(times[np.argmax(after)] - breakpoint_time)


def tracking_regret(
    trajectory: Trajectory,
    track: EquilibriumTrack,
) -> float:
    """Return the time-integrated Beckmann-potential gap to the moving optimum.

    At every recorded point the trajectory's flow is priced in the *current*
    effective environment and its Beckmann potential is compared with the
    instantaneous equilibrium's (which minimises it); the gap is integrated
    by the trapezoid rule.  The potential is the Lyapunov function of the
    paper's dynamics, so this is the natural "cost of chasing" metric: zero
    iff the dynamics sit on the instantaneous equilibrium throughout, and
    non-negative up to solver tolerance.
    """
    from ..wardrop.potential import potential
    from ..wardrop.flow import FlowVector

    network = track.network
    scenario = track.scenario
    times = np.array([point.time for point in trajectory.points])
    excess = np.empty(len(times))
    for i, point in enumerate(trajectory.points):
        t = float(times[i])
        effective = scenario.network_at(network, t)
        value = potential(FlowVector(effective, point.flow.values(), validate=False))
        excess[i] = value - track.equilibrium_at(t).potential
    if len(times) < 2:
        return 0.0
    # np.trapezoid is the numpy >= 2 name; fall back to trapz on 1.x so this
    # module does not silently raise the project's numpy floor.
    trapezoid = getattr(np, "trapezoid", None) or np.trapz
    return float(trapezoid(excess, times))
