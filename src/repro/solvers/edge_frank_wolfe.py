"""Edge-flow Frank--Wolfe: equilibrium computation without a path set.

The classical path-based solver (:mod:`repro.solvers.frank_wolfe`) needs the
enumerated path sets to express flows, which confines it to toy instances.
This module solves the same Beckmann minimisation directly in *edge-flow*
space: the state is one number per graph edge, the descent direction comes
from the all-or-nothing oracle (one Dijkstra per origin, loading every
commodity's demand onto its cheapest path), and convergence is certified by
the standard *relative duality gap* ``TSTT / SPTT - 1`` of the traffic
assignment literature.  Nothing in the solver ever enumerates a path, so
Sioux Falls-scale road networks (hundreds of OD pairs) solve in a few dozen
iterations.

Three methods share the oracle machinery (``method=`` selects one):

* ``fw`` -- plain Frank--Wolfe: move towards the all-or-nothing point with
  the exact line-search step.  Robust, but the zig-zagging between vertices
  gives the well-known ``1/k`` tail.
* ``cfw`` -- conjugate-direction Frank--Wolfe (Mitradjieva--Lindberg): the
  direction endpoint is the convex combination ``a * s_prev + (1-a) * y`` of
  the previous endpoint and the new all-or-nothing point, with ``a`` chosen
  so the new search direction is conjugate to the previous one with respect
  to the (diagonal) Hessian ``diag(l_e'(f_e))`` of the Beckmann potential.
* ``bfw`` -- biconjugate Frank--Wolfe: the endpoint mixes the all-or-nothing
  point with the *two* previous endpoints so the direction is conjugate to
  both previous search directions.  The fastest of the three on road
  networks (gap ``1e-4`` on Sioux Falls in a small fraction of the plain-FW
  iteration count -- the benchmark-backed test pins the 5x bar).

The conjugate methods degrade gracefully: whenever a conjugacy denominator
vanishes, a step hits the segment boundary, or the composed direction stops
being a descent direction, the iteration falls back to the plain
all-or-nothing direction (a "restart" in the conjugate-gradient sense).

The path-based solver remains the ground truth on enumerable instances; the
equivalence test asserts both produce the same edge flows.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..largescale.shortest import ShortestPathOracle
from ..telemetry.runtime import get_telemetry
from ..wardrop.network import WardropNetwork
from .line_search import bisection_root
from .options import check_method

# Conjugate weights are capped strictly below 1 so the composed endpoint
# always keeps a fresh all-or-nothing component (Mitradjieva--Lindberg use
# the same guard); at exactly 1 the direction would degenerate to the
# previous one and the iteration could stall.
CONJUGATE_WEIGHT_CAP = 0.999


@dataclass(frozen=True)
class EdgeEquilibriumResult:
    """The output of the edge-flow Frank--Wolfe solver.

    Attributes
    ----------
    edge_flows:
        The equilibrium edge flows, indexed by ``oracle.edges`` (all graph
        edges, not just on-path ones).
    potential_value:
        The Beckmann potential ``sum_e int_0^{f_e} l_e``.
    relative_gap:
        The final relative duality gap ``TSTT / SPTT - 1`` *of the returned
        flows* -- recomputed after the last step when the iteration cap is
        hit, so unconverged results report the state they return, not the
        pre-step iterate.
    tstt / sptt:
        Total and shortest-path system travel time at the returned flows (in
        the instance's normalised units; multiply by the raw total demand to
        recover TNTP units).
    iterations / converged / gap_history:
        Iteration diagnostics, mirroring the path-based solver.  On an
        iteration-cap exit ``gap_history`` gains one trailing entry: the
        recomputed gap of the returned flows.
    method:
        The algorithm that produced the result (``fw``, ``cfw`` or ``bfw``).
    """

    edge_flows: np.ndarray
    potential_value: float
    relative_gap: float
    tstt: float
    sptt: float
    iterations: int
    converged: bool
    gap_history: List[float]
    method: str = "fw"


def edge_potential(network: WardropNetwork, oracle: ShortestPathOracle, edge_flows: np.ndarray) -> float:
    """Return the Beckmann potential of an oracle-order edge-flow vector."""
    return float(
        sum(
            network.latency_function(edge).integral(edge_flows[i])
            for i, edge in enumerate(oracle.edges)
        )
    )


def relative_duality_gap(
    network: WardropNetwork,
    oracle: ShortestPathOracle,
    edge_flows: np.ndarray,
) -> float:
    """Return ``TSTT / SPTT - 1`` of an edge-flow vector (0 at equilibrium)."""
    costs = oracle.latency_costs(network, edge_flows)
    load = oracle.all_or_nothing(costs)
    tstt = float(np.dot(costs, edge_flows))
    return tstt / load.sptt - 1.0


def _hessian_diagonal(functions, flows: np.ndarray) -> np.ndarray:
    """Return ``diag(l_e'(f_e))``, the Beckmann Hessian at ``flows``."""
    return np.array(
        [functions[i].derivative(flows[i]) for i in range(len(flows))]
    )


def _conjugate_point(
    flows: np.ndarray,
    aon: np.ndarray,
    previous: np.ndarray,
    hessian: np.ndarray,
) -> np.ndarray:
    """Mitradjieva--Lindberg CFW endpoint: mix ``aon`` with ``previous``.

    Solves ``(s - flows)^T H (previous - flows) = 0`` for the weight of
    ``previous`` in ``s = a * previous + (1 - a) * aon`` and clips it to
    ``[0, CONJUGATE_WEIGHT_CAP]``; any degenerate denominator restarts with
    the plain all-or-nothing point.
    """
    d_prev = previous - flows
    weighted = d_prev * hessian
    denominator = float(np.dot(weighted, aon - previous))
    if denominator == 0.0 or not np.isfinite(denominator):
        return aon
    alpha = float(np.dot(weighted, aon - flows)) / denominator
    if not np.isfinite(alpha) or alpha <= 0.0:
        return aon
    alpha = min(alpha, CONJUGATE_WEIGHT_CAP)
    return alpha * previous + (1.0 - alpha) * aon


def _biconjugate_point(
    flows: np.ndarray,
    aon: np.ndarray,
    previous: np.ndarray,
    previous2: np.ndarray,
    step_prev: float,
    hessian: np.ndarray,
) -> np.ndarray:
    """Mitradjieva--Lindberg BFW endpoint: conjugate to both prior directions.

    ``previous`` / ``previous2`` are the last two direction endpoints and
    ``step_prev`` the last line-search step.  The endpoint is the convex
    combination ``b0 * aon + b1 * previous + b2 * previous2`` whose direction
    from ``flows`` is ``H``-conjugate to both previous search directions;
    degenerate geometry (previous step at the segment boundary, vanishing
    denominators) falls back to the singly-conjugate point.
    """
    if step_prev >= 1.0 - 1e-10 or step_prev <= 0.0:
        return _conjugate_point(flows, aon, previous, hessian)
    # Directions proportional to the two previous search directions,
    # expressed from the current iterate (Mitradjieva & Lindberg, 2013).
    d1 = previous - flows
    d2 = step_prev * previous2 + (1.0 - step_prev) * previous - flows
    gradient_like = hessian * (aon - flows)
    denom_mu = float(np.dot(d2 * hessian, previous - previous2))
    denom_nu = float(np.dot(d1 * hessian, d1))
    if (
        denom_mu == 0.0
        or denom_nu == 0.0
        or not np.isfinite(denom_mu)
        or not np.isfinite(denom_nu)
    ):
        return _conjugate_point(flows, aon, previous, hessian)
    mu = -float(np.dot(d2, gradient_like)) / denom_mu
    nu = -float(np.dot(d1, gradient_like)) / denom_nu + mu * step_prev / (
        1.0 - step_prev
    )
    mu = max(0.0, mu)
    nu = max(0.0, nu)
    if not (np.isfinite(mu) and np.isfinite(nu)):
        return _conjugate_point(flows, aon, previous, hessian)
    beta0 = 1.0 / (1.0 + mu + nu)
    beta1 = nu * beta0
    beta2 = mu * beta0
    if beta0 < 1.0 - CONJUGATE_WEIGHT_CAP:
        # The fresh all-or-nothing component all but vanished; restart.
        return _conjugate_point(flows, aon, previous, hessian)
    return beta0 * aon + beta1 * previous + beta2 * previous2


def solve_edge_flow_equilibrium(
    network: WardropNetwork,
    tolerance: float = 1e-6,
    max_iterations: int = 2000,
    oracle: Optional[ShortestPathOracle] = None,
    initial_edge_flows: Optional[np.ndarray] = None,
    method: str = "fw",
) -> EdgeEquilibriumResult:
    """Compute the Wardrop equilibrium in edge-flow space by Frank--Wolfe.

    Parameters
    ----------
    network:
        The instance; only its graph, commodities and latency functions are
        used -- the (possibly restricted) path set is never touched.
    tolerance:
        Target *relative* duality gap ``TSTT / SPTT - 1``.
    max_iterations:
        Iteration cap; the result reports whether it was hit.  On a cap exit
        the diagnostics (``relative_gap`` / ``tstt`` / ``sptt``) are
        recomputed from the *returned* flows, not the pre-step iterate.
    oracle:
        Optional pre-built :class:`ShortestPathOracle` (reused across calls
        by the benchmarks); built from the network's graph, commodities and
        ``first_thru_node`` metadata otherwise.
    initial_edge_flows:
        Optional warm start (oracle edge order); defaults to the
        all-or-nothing flow at free-flow costs, the classical initialiser.
    method:
        ``"fw"`` (plain), ``"cfw"`` (conjugate) or ``"bfw"`` (biconjugate);
        see the module docstring.
    """
    check_method(method, "edge")
    if oracle is None:
        oracle = ShortestPathOracle.for_network(network)
    if initial_edge_flows is None:
        flows = oracle.all_or_nothing(oracle.free_flow_costs(network)).edge_flows
    else:
        flows = np.asarray(initial_edge_flows, dtype=float).copy()
        if flows.shape != (oracle.num_edges,):
            raise ValueError(
                f"initial edge flows have shape {flows.shape}, "
                f"expected ({oracle.num_edges},)"
            )

    functions = [network.latency_function(edge) for edge in oracle.edges]
    tele = get_telemetry()
    run_span = tele.span(
        "engine_run",
        engine="edge-fw",
        instance=network.graph.graph.get("name") or "-",
        method=method,
        edges=oracle.num_edges,
        tolerance=tolerance,
        state_bytes=flows.nbytes,
    )
    gap_series = tele.series_of("fw.relative_gap")
    gap_series.annotate(method=method)
    iteration_counter = tele.counter("fw.iterations")
    solve_start = time.perf_counter() if tele.enabled else 0.0
    gap_history: List[float] = []
    converged = False
    iterations = 0
    relative_gap = np.inf
    costs = oracle.latency_costs(network, flows)
    tstt = float(np.dot(costs, flows))
    sptt = tstt
    # Conjugate-direction state (cfw/bfw): the last two direction endpoints
    # and the last accepted line-search step.
    previous_point: Optional[np.ndarray] = None
    previous_point2: Optional[np.ndarray] = None
    step = 0.0
    for iterations in range(1, max_iterations + 1):
        iteration_span = tele.span("fw_iteration", index=iterations, method=method)
        load = oracle.all_or_nothing(costs)
        tstt = float(np.dot(costs, flows))
        sptt = load.sptt
        relative_gap = tstt / sptt - 1.0
        gap_history.append(relative_gap)
        if tele.enabled:
            # The gap-vs-wall-time curve is a first-class trace artefact:
            # `repro report` plots solver progress from this series alone.
            gap_series.append(time.perf_counter() - solve_start, relative_gap)
            iteration_span.annotate(gap=relative_gap)
        iteration_counter.add()
        if relative_gap <= tolerance:
            converged = True
            iteration_span.close()
            break
        target = load.edge_flows
        if method != "fw" and previous_point is not None:
            hessian = _hessian_diagonal(functions, flows)
            if method == "bfw" and previous_point2 is not None:
                target = _biconjugate_point(
                    flows, load.edge_flows, previous_point, previous_point2,
                    step, hessian,
                )
            else:
                target = _conjugate_point(
                    flows, load.edge_flows, previous_point, hessian
                )
            # The Beckmann gradient is the cost vector, so the directional
            # derivative of the composed direction is directly checkable; a
            # non-descent compose (numerical noise near optimality) restarts
            # with the plain all-or-nothing direction.
            if float(np.dot(costs, target - flows)) >= 0.0:
                target = load.edge_flows
        direction = target - flows

        def potential_slope(step: float) -> float:
            """Directional derivative of the Beckmann potential at ``step``."""
            point = flows + step * direction
            return float(
                sum(
                    functions[i].value(point[i]) * direction[i]
                    for i in range(len(direction))
                    if direction[i] != 0.0
                )
            )

        step = bisection_root(potential_slope, 0.0, 1.0)
        if step <= 0.0:
            # Stalled exact line search: fall back to the 2/(k+2) schedule.
            step = 2.0 / (iterations + 2.0)
        flows = flows + step * direction
        costs = oracle.latency_costs(network, flows)
        previous_point2 = previous_point
        previous_point = target
        iteration_span.close()
    if not converged:
        # Iteration-cap exit: the loop's diagnostics describe the *pre-step*
        # iterate, but the caller receives the post-step flows.  Recompute
        # the certificate at the returned flows (mirroring the path-based
        # solver's final duality-gap recomputation) so unconverged tracking
        # baselines are reported honestly.
        load = oracle.all_or_nothing(costs)
        tstt = float(np.dot(costs, flows))
        sptt = load.sptt
        relative_gap = tstt / sptt - 1.0
        gap_history.append(relative_gap)
        if tele.enabled:
            gap_series.append(time.perf_counter() - solve_start, relative_gap)
        converged = relative_gap <= tolerance
    run_span.annotate(iterations=iterations, converged=converged, gap=float(relative_gap))
    run_span.close()
    tele.counter("fw.runs").add()
    return EdgeEquilibriumResult(
        edge_flows=flows,
        potential_value=edge_potential(network, oracle, flows),
        relative_gap=float(relative_gap),
        tstt=tstt,
        sptt=float(sptt),
        iterations=iterations,
        converged=converged,
        gap_history=gap_history,
        method=method,
    )
