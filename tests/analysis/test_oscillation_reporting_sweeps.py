"""Unit tests for oscillation detection, table rendering and the sweep harness."""

from __future__ import annotations

import pytest

from repro.analysis import (
    SweepCase,
    analyse_oscillation,
    cartesian,
    convergence_row_builder,
    format_value,
    phase_start_latency_trace,
    print_table,
    render_comparison,
    render_table,
    run_sweep,
)
from repro.core import oscillation_amplitude, replicator_policy, simulate_best_response, uniform_policy
from repro.instances import lopsided_flow, oscillation_initial_flow, two_link_network


class TestOscillationDetection:
    def test_best_response_detected_as_oscillating(self):
        beta, period = 4.0, 0.5
        network = two_link_network(beta=beta)
        trajectory = simulate_best_response(
            network, update_period=period, horizon=30.0,
            initial_flow=oscillation_initial_flow(network, period),
        )
        report = analyse_oscillation(trajectory)
        assert report.is_oscillating
        assert report.period_phases == 2
        assert report.mean_phase_start_latency == pytest.approx(
            oscillation_amplitude(beta, period), rel=1e-6
        )

    def test_converged_run_not_flagged(self, two_links_steep):
        policy = replicator_policy(two_links_steep)
        period = policy.safe_update_period(two_links_steep)
        from repro.core import simulate

        trajectory = simulate(
            two_links_steep, policy, update_period=period, horizon=60.0,
            initial_flow=lopsided_flow(two_links_steep, 0.9),
        )
        report = analyse_oscillation(trajectory, window=20)
        assert not report.is_oscillating

    def test_phase_start_latency_trace_length(self, two_links):
        trajectory = simulate_best_response(
            two_links, update_period=0.5, horizon=5.0,
            initial_flow=oscillation_initial_flow(two_links, 0.5),
        )
        trace = phase_start_latency_trace(trajectory)
        assert len(trace) == len(trajectory.phases)

    def test_empty_trajectory_rejected(self, two_links):
        from repro.core import Trajectory

        with pytest.raises(ValueError):
            analyse_oscillation(Trajectory(network=two_links))


class TestReporting:
    def test_format_value_variants(self):
        assert format_value(True) == "yes"
        assert format_value(0.0) == "0"
        assert format_value(float("inf")) == "inf"
        assert format_value(float("nan")) == "nan"
        assert format_value(123456.0) == "1.235e+05"
        assert format_value("text") == "text"

    def test_render_table_alignment(self):
        rows = [{"a": 1, "b": 0.5}, {"a": 20, "b": 0.25}]
        text = render_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_render_table_empty(self):
        assert "(no rows)" in render_table([], title="empty")

    def test_print_table_smoke(self, capsys):
        print_table([{"x": 1}])
        assert "x" in capsys.readouterr().out

    def test_render_comparison(self):
        text = render_comparison("X", predicted=2.0, measured=1.0, note="half")
        assert "predicted=2" in text
        assert "measured=1" in text
        assert "half" in text


class TestSweeps:
    def test_cartesian_product(self):
        combos = cartesian(a=[1, 2], b=["x", "y", "z"])
        assert len(combos) == 6
        assert {"a": 1, "b": "x"} in combos

    def test_run_sweep_collects_rows(self, two_links):
        policy = uniform_policy(two_links)
        cases = [
            SweepCase(
                parameters={"T": period},
                network=two_links,
                policy=policy,
                update_period=period,
                horizon=2.0,
                initial_flow=lopsided_flow(two_links, 0.9),
            )
            for period in [0.1, 0.2]
        ]
        result = run_sweep(cases, convergence_row_builder(delta=0.1, epsilon=0.1))
        assert len(result) == 2
        assert result.column("T") == [0.1, 0.2]
        assert all("bad_phases" in row for row in result.rows)
