"""E4 -- Theorem 6: convergence time of uniform sampling + linear migration.

Measures, on parallel-link families of growing size, the number of update
periods that do *not* start at a (delta, eps)-equilibrium and compares it
with the Theorem 6 bound ``O(|P| / (eps T) * (l_max/delta)^2)``.  The measured
count must stay below the bound, and its growth with ``|P|`` and ``1/delta^2``
should be visible.
"""

from __future__ import annotations

import pytest

from repro.analysis import count_bad_phases, print_table
from repro.core import simulate, uniform_policy
from repro.core.bounds import uniform_convergence_bound
from repro.instances import heterogeneous_affine_links
from repro.wardrop import FlowVector

LINK_COUNTS = [2, 4, 8, 16]
DELTAS = [0.4, 0.2, 0.1]
EPSILON = 0.1


def run_uniform(network, horizon=120.0):
    policy = uniform_policy(network)
    period = min(policy.safe_update_period(network), 1.0)
    start = FlowVector.single_path(network, {0: 0})
    trajectory = simulate(
        network, policy, update_period=period, horizon=horizon,
        initial_flow=start, steps_per_phase=20,
    )
    return trajectory, period


@pytest.mark.experiment("E4")
def test_uniform_sampling_bad_phase_counts(report_header):
    rows = []
    for num_links in LINK_COUNTS:
        network = heterogeneous_affine_links(num_links, seed=7)
        trajectory, period = run_uniform(network)
        for delta in DELTAS:
            summary = count_bad_phases(trajectory, delta, EPSILON)
            bound = uniform_convergence_bound(network, period, delta, EPSILON)
            rows.append(
                {
                    "links(|P|)": num_links,
                    "delta": delta,
                    "T": period,
                    "bad_phases": summary.bad_phases,
                    "thm6_bound": bound,
                    "within_bound": summary.bad_phases <= bound,
                    "total_phases": summary.total_phases,
                }
            )
    print_table(rows, title="E4: Theorem 6 -- uniform sampling convergence time")
    for row in rows:
        assert row["within_bound"]
    # Tightening delta by 2x must not shrink the bad-phase count: the
    # (delta, eps) requirement is strictly harder to satisfy.
    for num_links in LINK_COUNTS:
        counts = [row["bad_phases"] for row in rows if row["links(|P|)"] == num_links]
        assert counts == sorted(counts)


@pytest.mark.experiment("E4")
def test_benchmark_uniform_policy_run(benchmark, report_header):
    network = heterogeneous_affine_links(8, seed=7)
    trajectory, _ = benchmark(run_uniform, network, 30.0)
    assert len(trajectory.phases) > 0
