"""Active path sets: shortest-path column generation at bulletin refreshes.

On real road networks the strategy sets ``P_i`` are astronomically large, so
the reproduction cannot hand every agent the full path list.  What it *can*
do -- and what matches the paper's information model -- is let the set of
*known* routes grow exactly when new information arrives: at every bulletin
board refresh a shortest-path oracle is queried against the freshly posted
edge latencies, and any cheapest route not yet in the restricted set becomes
a new column (a new path with zero flow that agents may now sample and
migrate onto).  Between refreshes the dynamics run unchanged on the current
restricted :class:`~repro.wardrop.network.WardropNetwork`.

:class:`ActivePathSet` manages the restricted set (the classic
:class:`~repro.wardrop.paths.PathSet` is recovered as the *closed* special
case where augmentation is disabled), and
:func:`simulate_with_column_generation` drives the rerouting dynamics on it,
phase by phase, rebuilding the restricted network whenever a refresh
discovers new routes.

Column generation is **exact at equilibrium** for the Beckmann problem: if
the restricted dynamics settle at a flow whose shortest path (under live
latencies) is already in the set and carries no latency advantage, that flow
is a Wardrop equilibrium of the *full* network -- the oracle certificate is
the same one Frank--Wolfe uses.  Away from equilibrium it is a heuristic:
routes are only discovered at refresh instants, so a transient may
temporarily route along suboptimal known paths (which is precisely the
staleness phenomenon the paper studies).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Callable, List, Optional, Sequence, Tuple, Union

import networkx as nx
import numpy as np

from ..core.dynamics import integrate, integration_step_for
from ..core.policy import ReroutingPolicy
from ..core.trajectory import PhaseRecord, Trajectory
from ..telemetry.runtime import get_telemetry
from ..wardrop.commodity import Commodity, normalise_demands
from ..wardrop.flow import FlowVector
from ..wardrop.network import WardropNetwork
from ..wardrop.paths import Path, PathSet
from .shortest import ShortestPathOracle

if TYPE_CHECKING:  # pragma: no cover - annotation-only import
    from ..scenarios.scenario import Scenario

PolicyOrBuilder = Union[ReroutingPolicy, Callable[[WardropNetwork], ReroutingPolicy]]


class ActivePathSet:
    """A growing restricted path set backed by a shortest-path oracle.

    Parameters
    ----------
    graph:
        The full multigraph (edges carry
        :class:`~repro.wardrop.latency.LatencyFunction` attributes).
    commodities:
        The OD pairs; demands are normalised once here so every rebuilt
        restricted network shares the exact same demand vector.
    initial_paths:
        Optional seed paths per commodity (``Sequence[Sequence[Path]]``).
        Defaults to one free-flow shortest path per commodity -- the routes
        agents would know before any congestion information exists.
    closed:
        If ``True`` augmentation is a no-op: the set behaves exactly like
        the classic fixed :class:`PathSet` (the closed special case).
    first_thru_node:
        TNTP centroid bound forwarded to the oracle.
    incidence_mode:
        Incidence backend for the restricted networks (``"auto"`` default).
    """

    def __init__(
        self,
        graph: nx.MultiDiGraph,
        commodities: Sequence[Commodity],
        initial_paths: Optional[Sequence[Sequence[Path]]] = None,
        closed: bool = False,
        first_thru_node: Optional[int] = None,
        incidence_mode: str = "auto",
    ):
        self.graph = graph
        self.commodities: List[Commodity] = list(normalise_demands(list(commodities)))
        self.closed = closed
        self.incidence_mode = incidence_mode
        self.oracle = ShortestPathOracle(
            graph, self.commodities, first_thru_node=first_thru_node
        )
        if initial_paths is None:
            seeds = self.oracle.shortest_commodity_paths(self.oracle.free_flow_costs())
            initial_paths = [[seed] for seed in seeds]
        self._paths_by_commodity: List[List[Path]] = [
            list(paths) for paths in initial_paths
        ]
        if len(self._paths_by_commodity) != len(self.commodities):
            raise ValueError(
                f"initial paths cover {len(self._paths_by_commodity)} commodities, "
                f"instance has {len(self.commodities)}"
            )
        self._known = {
            path for paths in self._paths_by_commodity for path in paths
        }
        self.version = 0
        self._path_set = PathSet(self._paths_by_commodity)
        # The first network build validates the (caller-supplied) seed paths;
        # grown rebuilds skip the full re-validation scan -- oracle-traced
        # paths are graph paths by construction.
        self._validated = False
        # Old-index -> new-index permutation of the most recent growth event
        # (paths keep their identity; appending shifts later global indices).
        self.last_permutation: Optional[np.ndarray] = None
        self._network: Optional[WardropNetwork] = None

    @classmethod
    def from_network(cls, network: WardropNetwork, closed: bool = False) -> "ActivePathSet":
        """Wrap an existing network's graph and commodities.

        ``closed=True`` seeds with the network's full enumerated path set
        and freezes it -- the restricted dynamics are then *identical* to
        the classic fixed-path-set dynamics.  ``closed=False`` starts from
        free-flow shortest paths and grows from there (the network's own
        path set is used only when it was itself built restricted).

        An explicitly sparse source network keeps the sparse backend for
        every rebuilt restricted network; dense sources stay on ``"auto"``
        so growth past the size threshold can still upgrade to CSR.
        """
        from .incidence import SparseIncidence

        initial: Optional[Sequence[Sequence[Path]]] = None
        if closed:
            initial = [
                network.paths.commodity_paths(i)
                for i in range(network.num_commodities)
            ]
        mode = (
            "sparse"
            if isinstance(network.incidence_operator, SparseIncidence)
            else "auto"
        )
        return cls(
            network.graph,
            network.commodities,
            initial_paths=initial,
            closed=closed,
            first_thru_node=network.graph.graph.get("first_thru_node"),
            incidence_mode=mode,
        )

    # Structure --------------------------------------------------------------

    @property
    def num_paths(self) -> int:
        return sum(len(paths) for paths in self._paths_by_commodity)

    def path_set(self) -> PathSet:
        """Return the current restricted :class:`PathSet` (shared, grown in place)."""
        return self._path_set

    @property
    def network(self) -> WardropNetwork:
        """The restricted network over the current path set (cached)."""
        if self._network is None:
            self._network = WardropNetwork(
                self.graph,
                self.commodities,
                normalise=False,
                paths=self._path_set,
                incidence_mode=self.incidence_mode,
                validate_paths=not self._validated,
            )
            self._validated = True
        return self._network

    # Growth -----------------------------------------------------------------

    def augment(self, edge_costs: np.ndarray) -> List[Path]:
        """Grow the set by the cheapest paths under ``edge_costs``.

        ``edge_costs`` is an oracle-order cost vector (typically the posted
        edge latencies, expanded to the full graph).  Returns the list of
        *new* paths (empty if every commodity's cheapest route was already
        known, or if the set is closed).
        """
        if self.closed:
            return []
        return self.add_paths(self.oracle.shortest_commodity_paths(edge_costs))

    def add_paths(self, paths: Sequence[Path]) -> List[Path]:
        """Grow the set by the given candidate paths (skipping known ones).

        This is the union entry point of the batched driver: candidates
        discovered by different rows are merged here, each new column joining
        the end of its commodity's block.  The path set grows *incrementally*
        (see :meth:`~repro.wardrop.paths.PathSet.extended`): edge membership
        -- and therefore the CSR incidence assembly -- is carried over, only
        the new columns are scanned, and :attr:`last_permutation` records
        where every old global index moved.  Returns the new paths; a closed
        set never grows.
        """
        if self.closed:
            return []
        added: List[Path] = []
        for path in paths:
            if path not in self._known:
                self._known.add(path)
                self._paths_by_commodity[path.commodity_index].append(path)
                added.append(path)
        if added:
            self._path_set, self.last_permutation = self._path_set.extended(added)
            self.version += 1
            self._network = None
        return added

    def posted_costs(self, network: WardropNetwork, path_flows: np.ndarray) -> np.ndarray:
        """Full-graph edge latencies induced by restricted path flows.

        Edges off every known path carry zero flow, so their posted latency
        is the free-flow value -- exactly what a bulletin board covering the
        whole network would display.
        """
        full_flows = self.oracle.expand_edge_values(
            network, network.edge_flows(path_flows)
        )
        return self.oracle.latency_costs(network, full_flows)

    def invalidate_columns(self, network: WardropNetwork, closed_edges) -> List[int]:
        """Return the indices of columns crossing any of ``closed_edges``.

        The columns stay in the set (the trajectory bookkeeping needs a
        monotone path dimension) but the caller is expected to make them
        unusable: the column-generation driver moves their flow onto each
        commodity's best open column the moment a closure starts, and the
        scenario's closure penalty keeps the dynamics from migrating back.
        """
        closed = set(closed_edges)
        if not closed:
            return []
        return [
            index
            for index, path in enumerate(network.paths)
            if any(edge in closed for edge in path.edges)
        ]

    def embed(
        self,
        values: np.ndarray,
        old_network: WardropNetwork,
        new_network: WardropNetwork,
    ) -> np.ndarray:
        """Re-express a flow vector of ``old_network`` on ``new_network``.

        Newly generated columns start with zero flow; every old path keeps
        its value (the restricted set only ever grows).
        """
        embedded = np.zeros(new_network.num_paths)
        for index, path in enumerate(old_network.paths):
            embedded[new_network.paths.index_of(path)] = values[index]
        return embedded

    def __repr__(self) -> str:
        return (
            f"ActivePathSet(paths={self.num_paths}, "
            f"commodities={len(self.commodities)}, version={self.version}, "
            f"closed={self.closed})"
        )


@dataclass
class ColumnGenerationResult:
    """The outcome of a column-generation simulation run.

    ``trajectory`` is recorded on the *final* restricted network (earlier
    samples are embedded, with zero flow on later-discovered columns), so
    the whole analysis toolkit applies unchanged.  ``growth_events`` lists
    ``(phase_index, new_paths)`` pairs for every refresh that discovered
    routes; ``path_counts`` traces the restricted set's size per phase.
    """

    trajectory: Trajectory
    network: WardropNetwork
    active: ActivePathSet
    growth_events: List[Tuple[int, List[Path]]] = field(default_factory=list)
    path_counts: List[int] = field(default_factory=list)
    # Scenario closures: (phase_index, flow volume moved off closed columns).
    eviction_events: List[Tuple[int, float]] = field(default_factory=list)

    @property
    def final_flow(self) -> FlowVector:
        return self.trajectory.final_flow

    @property
    def total_columns_added(self) -> int:
        return sum(len(paths) for _, paths in self.growth_events)


def _resolve_policy(policy: PolicyOrBuilder, network: WardropNetwork) -> ReroutingPolicy:
    if isinstance(policy, ReroutingPolicy):
        return policy
    return policy(network)


def _evict_closed_columns(
    network: WardropNetwork,
    values: np.ndarray,
    crossing: List[int],
    path_latencies: np.ndarray,
) -> Tuple[np.ndarray, float]:
    """Move flow off closed (crossing) columns onto each commodity's best open one.

    Returns the repaired flow and the total volume moved.  A commodity whose
    every column crosses a closed edge keeps its flow (there is nothing open
    to route onto -- the closure penalty still prices the columns out for the
    oracle, which will seed a detour at the next refresh).
    """
    if not crossing:
        return values, 0.0
    crossing_set = set(crossing)
    values = values.copy()
    moved = 0.0
    for i in range(network.num_commodities):
        indices = list(network.paths.commodity_indices(i))
        closed_local = [p for p in indices if p in crossing_set]
        open_local = [p for p in indices if p not in crossing_set]
        if not closed_local or not open_local:
            continue
        volume = float(values[closed_local].sum())
        if volume <= 0.0:
            continue
        best = min(open_local, key=lambda p: (path_latencies[p], p))
        values[closed_local] = 0.0
        values[best] += volume
        moved += volume
    return values, moved


def simulate_with_column_generation(
    active: ActivePathSet,
    policy: PolicyOrBuilder,
    update_period: float,
    horizon: float,
    initial_flow: Optional[FlowVector] = None,
    stale: bool = True,
    steps_per_phase: int = 50,
    method: str = "rk4",
    stop_when: Optional[Callable[[float, FlowVector], bool]] = None,
    scenario: Optional["Scenario"] = None,
) -> ColumnGenerationResult:
    """Run the rerouting dynamics with column generation at every refresh.

    The loop mirrors the scalar
    :class:`~repro.core.simulator.ReroutingSimulator` phase for phase.  At
    each bulletin refresh the oracle is queried against the *posted* edge
    latencies (stale mode) or the live ones (fresh mode); newly discovered
    routes join the restricted set with zero flow before the phase
    integrates, so agents can sample them for the rest of the run -- route
    discovery is tied to information arrival, as in the paper's model.

    ``policy`` may be a fixed :class:`ReroutingPolicy` (reused across
    growth, e.g. one whose migration constant covers the full network) or a
    builder ``network -> policy`` re-invoked after every growth event.
    ``stop_when(time, flow)`` is evaluated at phase boundaries, exactly like
    the scalar simulator's.

    ``scenario`` makes the environment nonstationary (sampled at phase
    starts, like the engines).  A scenario state *change* is treated as an
    information event: it forces a bulletin refresh, so the oracle is
    immediately consulted against the changed environment.  When a closure
    starts, the crossing columns are invalidated -- their flow moves onto
    each commodity's best open column (``eviction_events`` records the
    volume) -- and the forced refresh seeds detour routes around the closed
    link in the same instant.
    """
    if update_period <= 0 or horizon <= 0:
        raise ValueError("update period and horizon must be positive")
    if steps_per_phase <= 0:
        raise ValueError("steps_per_phase must be positive")
    network = active.network
    if scenario is not None:
        scenario.require_edges(network)
    # ``is None``, not truthiness: FlowVector defines __len__, so ``or``
    # would silently replace a zero-length flow instead of rejecting it.
    flow = FlowVector.uniform(network) if initial_flow is None else initial_flow
    if flow.network is not network:
        raise ValueError("initial flow belongs to a different network")
    values = flow.values()
    current_policy = _resolve_policy(policy, network)
    step = integration_step_for(update_period, steps_per_phase)

    # Samples are stored as raw arrays tagged with the path-set version; the
    # final trajectory embeds them all on the last restricted network.
    samples: List[Tuple[float, WardropNetwork, np.ndarray, int]] = [
        (0.0, network, values.copy(), 0)
    ]
    boundaries: List[Tuple[int, float, float, np.ndarray, np.ndarray, WardropNetwork]] = []
    growth_events: List[Tuple[int, List[Path]]] = []
    path_counts: List[int] = []
    eviction_events: List[Tuple[int, float]] = []

    tele = get_telemetry()
    run_span = tele.span(
        "engine_run",
        engine="column-generation",
        instance=network.graph.graph.get("name") or "-",
        stale=stale,
        method=method,
        initial_paths=network.num_paths,
    )
    added_counter = tele.counter("cg.columns_added")
    invalidated_counter = tele.counter("cg.columns_invalidated")
    refresh_counter = tele.counter("cg.bulletin_refreshes")
    phases_counter = tele.counter("cg.phases_integrated")

    num_phases = int(np.ceil(horizon / update_period))
    posted_time = -np.inf
    posted_values: Optional[np.ndarray] = None
    posted_latencies: Optional[np.ndarray] = None
    posted_modulation = None
    previously_closed: frozenset = frozenset()
    for phase in range(num_phases):
        phase_start = phase * update_period
        phase_end = min((phase + 1) * update_period, horizon)

        if scenario is not None:
            effective = scenario.network_at(network, phase_start)
            modulation = scenario.modulation_at(phase_start)
            closed_now = scenario.closed_edges(phase_start)
        else:
            effective = network
            modulation = None
            closed_now = frozenset()

        if stale:
            # The board refreshes on exactly the scalar BulletinBoard's
            # schedule, including the floating-point floor(t/T) quirk that
            # occasionally leaves a snapshot in place for one more phase --
            # closed-mode runs stay bit-identical to the scalar simulator.
            # A scenario state change forces a refresh regardless.
            refresh_time = float(
                np.floor(phase_start / update_period) * update_period
            )
            refresh = (
                posted_values is None
                or refresh_time > posted_time + 1e-12
                or modulation != posted_modulation
            )
        else:
            refresh_time = phase_start
            refresh = True
        phase_span = tele.span("phase", index=phase, start=phase_start)
        if refresh:
            # Refresh instant: the board posts the live flow, and the oracle
            # is consulted on exactly what the board shows (priced in the
            # phase's effective environment).
            cg_span = tele.span("column_generation_round", phase=phase)
            tele.event("bulletin_refresh", time=refresh_time, phase=phase)
            refresh_counter.add()
            costs = active.posted_costs(effective, values)
            added = active.augment(costs)
            if added:
                growth_events.append((phase, added))
                added_counter.add(len(added))
                new_network = active.network
                values = active.embed(values, network, new_network)
                network = new_network
                effective = (
                    scenario.network_at(network, phase_start)
                    if scenario is not None
                    else network
                )
                current_policy = _resolve_policy(policy, network)
            newly_closed = closed_now - previously_closed
            if newly_closed:
                crossing = active.invalidate_columns(network, closed_now)
                invalidated_counter.add(len(crossing))
                values, moved = _evict_closed_columns(
                    network, values, crossing, effective.path_latencies(values)
                )
                if moved > 0.0:
                    eviction_events.append((phase, moved))
                    tele.event("columns_evicted", phase=phase, volume=moved)
                    tele.histogram("cg.evicted_volume").observe(moved)
            posted_values = values.copy()
            posted_latencies = effective.path_latencies(posted_values)
            posted_time = refresh_time
            posted_modulation = modulation
            cg_span.annotate(columns_added=len(added), paths=network.num_paths)
            cg_span.close()
        previously_closed = closed_now
        path_counts.append(network.num_paths)

        start_values = values.copy()
        if stale:
            with tele.span("field_eval"):
                field_fn = current_policy.frozen_growth_field(
                    network, posted_values, posted_latencies
                )
        else:
            policy_ref = current_policy
            network_ref = network
            effective_ref = effective

            def field_fn(_t: float, state: np.ndarray) -> np.ndarray:
                live = effective_ref.path_latencies(state)
                return policy_ref.growth_rates(network_ref, state, state, live)

        with tele.span("integrate", state_bytes=values.nbytes):
            raw = integrate(field_fn, values, phase_start, phase_end, step, method)
        values = FlowVector(network, raw, validate=False).projected().values()
        boundaries.append(
            (phase, phase_start, phase_end, start_values, values.copy(), network)
        )
        samples.append((phase_end, network, values.copy(), phase))
        phases_counter.add()
        phase_span.close()
        if stop_when is not None and stop_when(
            phase_end, FlowVector(network, values, validate=False)
        ):
            tele.event("stop_when_fired", time=phase_end, phase=phase)
            break
        if phase_end >= horizon:
            break

    run_span.annotate(
        final_paths=network.num_paths,
        columns_added=sum(len(paths) for _, paths in growth_events),
    )
    run_span.close()
    tele.counter("cg.runs").add()
    final_network = network
    trajectory = Trajectory(
        network=final_network,
        policy_name=current_policy.label() + " +column-generation",
        update_period=update_period if stale else 0.0,
    )
    for time, sample_network, sample_values, phase_index in samples:
        embedded = (
            sample_values
            if sample_network is final_network
            else active.embed(sample_values, sample_network, final_network)
        )
        trajectory.record(
            time, FlowVector(final_network, embedded, validate=False), phase_index
        )
    for phase, start_time, end_time, start_values, end_values, sample_network in boundaries:
        if sample_network is not final_network:
            start_values = active.embed(start_values, sample_network, final_network)
            end_values = active.embed(end_values, sample_network, final_network)
        trajectory.record_phase(
            PhaseRecord(
                index=phase,
                start_time=start_time,
                end_time=end_time,
                start_flow=FlowVector(final_network, start_values, validate=False),
                end_flow=FlowVector(final_network, end_values, validate=False),
            )
        )
    return ColumnGenerationResult(
        trajectory=trajectory,
        network=final_network,
        active=active,
        growth_events=growth_events,
        path_counts=path_counts,
        eviction_events=eviction_events,
    )
