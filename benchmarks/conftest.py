"""Shared helpers for the benchmark harness.

Every benchmark regenerates one experiment from EXPERIMENTS.md: it runs the
relevant sweep, prints a table with the paper-predicted quantity next to the
measured one (captured in ``bench_output.txt``) and uses pytest-benchmark to
time the core simulation call so that performance regressions are visible.
"""

from __future__ import annotations

import pytest


def pytest_configure(config):
    config.addinivalue_line(
        "markers", "experiment(id): mark a benchmark with its EXPERIMENTS.md id"
    )


@pytest.fixture(scope="session")
def report_header():
    """Print a one-time header so the captured bench output is self-describing."""
    print()
    print("=" * 78)
    print("Benchmark harness: 'Adaptive routing with stale information' reproduction")
    print("Each section prints paper-predicted vs measured quantities for one")
    print("experiment (see DESIGN.md experiment index and EXPERIMENTS.md).")
    print("=" * 78)
    return True
