"""E9 -- Validity of the fluid limit: finite agents vs the ODE trajectory.

The paper's analysis is carried out in the fluid limit of infinitely many
infinitesimal agents.  This benchmark runs the finite-population
discrete-event simulator for growing population sizes and reports the
sup-norm deviation of the empirical path shares from the fluid-limit
trajectory, which should shrink roughly like ``1/sqrt(n)``.

Since the batched agent engine landed, the whole population sweep --
``n`` from 1e2 to 1e5, several replicas each -- runs as **one**
:class:`~repro.batch.agents.BatchAgentSimulator` call instead of a Python
loop of scalar simulations; a second test measures the batched engine's
throughput against the per-replica scalar loop on the acceptance workload
(n = 10^4, B = 32) and checks both the >= 10x speedup and the bit-identity
of the replicas the scalar loop re-runs.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import fluid_limit_deviation, print_table
from repro.batch import simulate_agent_batch
from repro.core import AgentBasedSimulator, AgentSimulationConfig, replicator_policy, simulate
from repro.instances import lopsided_flow, two_link_network
from repro.telemetry.bench import bench_timer

POPULATIONS = [100, 1000, 10000, 100000]
REPLICAS = 4
HORIZON = 10.0

THROUGHPUT_POPULATION = 10_000
THROUGHPUT_BATCH = 32
THROUGHPUT_HORIZON = 2.5
SCALAR_SAMPLE = 4


def build_workload():
    network = two_link_network(beta=4.0)
    policy = replicator_policy(network, exploration=1e-3)
    period = policy.safe_update_period(network)
    start = lopsided_flow(network, 0.9)
    return network, policy, period, start


@pytest.mark.experiment("E9")
def test_finite_agents_approach_fluid_limit(report_header):
    network, policy, period, start = build_workload()
    fluid = simulate(
        network, policy, update_period=period, horizon=HORIZON, initial_flow=start
    )

    # The whole n-sweep (4 decades x 4 replicas) is one batched call.
    grid = [(n, replica) for n in POPULATIONS for replica in range(REPLICAS)]
    with bench_timer(
        "bench_fluid_limit", "E9 population sweep",
        engine="agents-batch", instance="two-links", cases=len(grid),
    ) as timer:
        result = simulate_agent_batch(
            network,
            policy,
            num_agents=[n for n, _ in grid],
            update_periods=period,
            horizons=HORIZON,
            initial_flows=start,
            seeds=[7 * n + replica for n, replica in grid],
        )
    seconds = timer.seconds

    rows = []
    means = []
    for n in POPULATIONS:
        deviations = [
            fluid_limit_deviation(result.trajectory(row), fluid)
            for row, (grid_n, _) in enumerate(grid)
            if grid_n == n
        ]
        means.append(float(np.mean(deviations)))
        rows.append(
            {
                "n_agents": n,
                "replicas": REPLICAS,
                "mean_sup_deviation": means[-1],
                "expected_scale(1/sqrt(n))": 1.0 / np.sqrt(n),
            }
        )
    print_table(
        rows,
        title=(
            f"E9: finite-agent shares vs fluid trajectory "
            f"({len(grid)} replicas in one batched call, {seconds:.2f}s)"
        ),
    )
    # Three orders of magnitude more agents must shrink the deviation, and
    # the largest population must sit in the O(1/sqrt(n)) regime.
    assert means[-1] < means[0]
    assert means[-1] < 5.0 / np.sqrt(POPULATIONS[-1])


@pytest.mark.experiment("E9")
def test_batched_agent_throughput_vs_scalar_loop(report_header):
    network, policy, period, start = build_workload()
    seeds = list(range(THROUGHPUT_BATCH))

    # Scalar baseline: the per-replica loop, timed on a subsample (every
    # replica has the same configuration, so the subsample rate is an
    # unbiased estimate of the full loop's rate).
    scalar_runs = []
    with bench_timer(
        "bench_fluid_limit", "E9b scalar loop",
        engine="agents", instance="two-links", cases=SCALAR_SAMPLE,
        population=THROUGHPUT_POPULATION,
    ) as scalar_timer:
        for row in range(SCALAR_SAMPLE):
            config = AgentSimulationConfig(
                num_agents=THROUGHPUT_POPULATION,
                update_period=period,
                horizon=THROUGHPUT_HORIZON,
                seed=seeds[row],
            )
            simulator = AgentBasedSimulator(network, policy, config)
            scalar_runs.append((simulator.run(start), simulator.final_assignment))
    scalar_seconds = scalar_timer.seconds
    scalar_rate = scalar_timer.rate

    with bench_timer(
        "bench_fluid_limit", "E9b replica batch",
        engine="agents-batch", instance="two-links", cases=THROUGHPUT_BATCH,
        population=THROUGHPUT_POPULATION,
    ) as batch_timer:
        result = simulate_agent_batch(
            network,
            policy,
            num_agents=[THROUGHPUT_POPULATION] * THROUGHPUT_BATCH,
            update_periods=period,
            horizons=THROUGHPUT_HORIZON,
            initial_flows=start,
            seeds=seeds,
        )
    batch_seconds = batch_timer.seconds
    batch_rate = batch_timer.rate

    speedup = batch_rate / scalar_rate
    print_table(
        [
            {
                "engine": "scalar loop",
                "replicas": SCALAR_SAMPLE,
                "seconds": scalar_seconds,
                "replicas/sec": scalar_rate,
            },
            {
                "engine": "BatchAgentSimulator",
                "replicas": THROUGHPUT_BATCH,
                "seconds": batch_seconds,
                "replicas/sec": batch_rate,
            },
            {"engine": "speedup", "replicas/sec": speedup},
        ],
        title=(
            f"E9b: batched agent engine vs per-replica scalar loop "
            f"(n={THROUGHPUT_POPULATION}, B={THROUGHPUT_BATCH})"
        ),
    )

    # The batched rows must be bit-identical to the scalar runs they replace.
    for row, (trajectory, assignment) in enumerate(scalar_runs):
        assert np.array_equal(assignment, result.assignments[row])
        assert np.array_equal(trajectory.flow_matrix(), result.trajectory(row).flow_matrix())
    assert speedup >= 10.0, f"batched agent engine only {speedup:.1f}x faster"


@pytest.mark.experiment("E9")
def test_benchmark_batched_agent_sweep(benchmark, report_header):
    network, policy, period, start = build_workload()

    def run():
        return simulate_agent_batch(
            network, policy,
            num_agents=[1000] * 8,
            update_periods=period,
            horizons=HORIZON,
            initial_flows=start,
            seeds=list(range(8)),
        )

    result = benchmark(run)
    assert result.batch_size == 8
