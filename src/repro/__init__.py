"""repro: a reproduction of "Adaptive routing with stale information".

Fischer & Voecking (PODC 2005 / TCS 2009) study load-adaptive rerouting in
the Wardrop model when latency information is only refreshed every ``T`` time
units (the bulletin-board model).  This package implements the full system:

* :mod:`repro.wardrop` -- the Wardrop routing substrate (networks, latency
  functions, flows, the Beckmann potential, equilibrium notions),
* :mod:`repro.solvers` -- classical equilibrium solvers used as ground truth,
* :mod:`repro.instances` -- the paper's instances and standard test networks,
* :mod:`repro.core` -- the paper's contribution: two-step sample-and-migrate
  rerouting policies, alpha-smoothness, the bulletin board, fluid-limit and
  finite-agent simulators, best-response baseline and closed-form bounds,
* :mod:`repro.analysis` -- convergence counting, oscillation detection,
  parameter sweeps and table rendering for the benchmark harness,
* :mod:`repro.batch` -- the batched vectorized simulation engine: whole
  ensembles of replicas integrated as one stacked array,
* :mod:`repro.experiments` -- experiment plans with deterministic seeds and
  the batch/pool/serial experiment runner behind the sweeps,
* :mod:`repro.scenarios` -- nonstationary scenarios: time-varying demand,
  link incidents, and equilibrium-tracking metrics for moving equilibria,
* :mod:`repro.telemetry` -- structured tracing, the metrics registry and
  the unified benchmark timing records (off by default; activate with
  :func:`repro.telemetry.telemetry_session`).

Quickstart::

    from repro.instances import two_link_network, lopsided_flow
    from repro.core import replicator_policy, simulate

    network = two_link_network(beta=4.0)
    policy = replicator_policy(network)
    safe_T = policy.safe_update_period(network)
    trajectory = simulate(network, policy, update_period=safe_T, horizon=50.0,
                          initial_flow=lopsided_flow(network, 0.9))
    print(trajectory.describe())
"""

from . import (
    analysis,
    batch,
    core,
    experiments,
    instances,
    scenarios,
    solvers,
    telemetry,
    wardrop,
)

__version__ = "1.3.0"

__all__ = [
    "analysis",
    "batch",
    "core",
    "experiments",
    "instances",
    "scenarios",
    "solvers",
    "telemetry",
    "wardrop",
    "__version__",
]
