"""The run ledger: persistent, append-only cross-run records.

In-run tracing answers "where did this run spend its time"; the ledger
answers the *cross*-run questions -- "did this PR make anything slower?",
"what did the same configuration score last week?" -- by persisting one
compact JSONL entry per engine run and per benchmark record into a
directory that outlives the process.

The ledger is **off by default** and costs nothing until a directory is
configured, either via the ``REPRO_LEDGER_DIR`` environment variable (the
CI smoke jobs set it and upload the directory as an artifact) or via
:func:`set_ledger_dir` (the CLI ``--ledger`` flag).  Emission is automatic:

* :func:`~repro.telemetry.runtime.telemetry_session` records every
  ``engine_run`` span (and the runner's ``sweep`` spans) on session exit --
  engines need no new arguments;
* :func:`~repro.telemetry.bench.emit_record` appends every
  ``repro-bench/1`` record as a ``bench`` entry.

Every entry carries a **config fingerprint**: a short stable hash over the
entry's *identifying* fields (instance, engine, method, batch size, agent
count, seed, periods...) with the *measured* fields (wall seconds, rates,
gaps, phase counts) excluded.  Two runs of the same configuration therefore
share a fingerprint, which is exactly the join key
:mod:`repro.telemetry.compare` diffs runs on.

Entry schema (``repro-ledger/1``)::

    {"schema": "repro-ledger/1", "kind": "engine_run" | "sweep" | "bench",
     "fingerprint": "a1b2c3d4e5f6", "recorded_unix": ...,
     "engine": ..., "wall_seconds": ..., "phases": ..., ...config fields}
"""

from __future__ import annotations

import hashlib
import json
import os
import time
from pathlib import Path
from typing import Any, Dict, List, Mapping, Optional, Union

__all__ = [
    "LEDGER_ENV",
    "LEDGER_SCHEMA",
    "RUNS_FILENAME",
    "MEASUREMENT_FIELDS",
    "config_fingerprint",
    "ledger_dir",
    "set_ledger_dir",
    "ledger_path",
    "append_entries",
    "record_bench",
    "session_entries",
    "record_session",
    "load_ledger",
]

LEDGER_ENV = "REPRO_LEDGER_DIR"
LEDGER_SCHEMA = "repro-ledger/1"
RUNS_FILENAME = "runs.jsonl"

# Fields that describe what was *measured*, never what was *configured*.
# They are excluded from the fingerprint so repeated runs of one
# configuration land on one join key regardless of how fast they went.
MEASUREMENT_FIELDS = frozenset(
    {
        "schema",
        "kind",
        "fingerprint",
        "recorded_unix",
        "seconds",
        "rate",
        "wall_seconds",
        "phases",
        "iterations",
        "converged",
        "gap",
        "relative_gap",
        "stop_phase",
    }
)

# Span names that count as one integration phase of their enclosing engine
# run (the fluid/agent engines open "phase", column generation opens one
# span per round, the edge solver one per FW iteration).
PHASE_SPAN_NAMES = frozenset({"phase", "column_generation_round", "fw_iteration"})

# Span names recorded as ledger entries (with their entry kind).
_RECORDED_SPANS = {"engine_run": "engine_run", "sweep": "sweep"}

_override_dir: Optional[str] = None


def set_ledger_dir(path: Optional[Union[str, Path]]) -> Optional[str]:
    """Install an explicit ledger directory; returns the previous override.

    Passing ``None`` removes the override, falling back to the
    ``REPRO_LEDGER_DIR`` environment variable (or no ledger at all).
    """
    global _override_dir
    previous = _override_dir
    _override_dir = str(path) if path is not None else None
    return previous


def ledger_dir() -> Optional[Path]:
    """Return the configured ledger directory, or ``None`` when disabled."""
    if _override_dir is not None:
        return Path(_override_dir)
    env = os.environ.get(LEDGER_ENV)
    return Path(env) if env else None


def ledger_path(directory: Optional[Union[str, Path]] = None) -> Optional[Path]:
    """Return the runs file inside the (given or configured) ledger dir."""
    base = Path(directory) if directory is not None else ledger_dir()
    if base is None:
        return None
    return base / RUNS_FILENAME


def _scalar(value: Any) -> Any:
    """Coerce an attribute to a JSON-friendly scalar (numpy included)."""
    if isinstance(value, bool) or value is None:
        return value
    if isinstance(value, (int, float, str)):
        return value
    if hasattr(value, "item"):
        try:
            return value.item()
        except (ValueError, TypeError):
            pass
    return str(value)


def config_fingerprint(fields: Mapping[str, Any]) -> str:
    """Return the 12-hex-digit fingerprint of an entry's identifying fields.

    Stable across dict ordering and process boundaries: the non-measurement
    fields are serialised as canonical sorted JSON and hashed.
    """
    identity = {
        key: _scalar(value)
        for key, value in fields.items()
        if key not in MEASUREMENT_FIELDS
    }
    blob = json.dumps(identity, sort_keys=True, default=str)
    return hashlib.sha1(blob.encode("utf-8")).hexdigest()[:12]


def append_entries(
    entries: List[Dict[str, Any]], directory: Optional[Union[str, Path]] = None
) -> int:
    """Append entries to the ledger's runs file; returns how many were written.

    Missing ``schema`` / ``fingerprint`` / ``recorded_unix`` fields are
    stamped in.  A no-op (returning 0) when no ledger directory is
    configured.
    """
    path = ledger_path(directory)
    if path is None or not entries:
        return 0
    path.parent.mkdir(parents=True, exist_ok=True)
    now = time.time()
    with open(path, "a") as handle:
        for entry in entries:
            stamped = dict(entry)
            stamped.setdefault("schema", LEDGER_SCHEMA)
            stamped.setdefault("fingerprint", config_fingerprint(entry))
            stamped.setdefault("recorded_unix", now)
            handle.write(json.dumps(stamped, default=str) + "\n")
    return len(entries)


def record_bench(record: Mapping[str, Any]) -> int:
    """Ledger one benchmark record (called by ``emit_record``; cheap no-op
    when no ledger directory is configured)."""
    if ledger_dir() is None:
        return 0
    entry = {key: value for key, value in record.items() if key != "schema"}
    entry["kind"] = "bench"
    return append_entries([entry])


def session_entries(telemetry) -> List[Dict[str, Any]]:
    """Build the ledger entries of one finished telemetry session.

    One ``engine_run`` entry per ``engine_run`` span -- its attributes
    (engine, method, batch size, agents, seed...) plus the measured wall
    seconds and the count of phase-like spans nested under it -- and one
    ``sweep`` entry per runner ``sweep`` span.
    """
    spans = list(getattr(telemetry.tracer, "spans", ()) or ())
    if not spans:
        return []
    by_id = {span.span_id: span for span in spans}

    def nearest_recorded_ancestor(span) -> Optional[int]:
        parent = span.parent_id
        while parent is not None:
            ancestor = by_id.get(parent)
            if ancestor is None:
                return None
            if ancestor.name == "engine_run":
                return ancestor.span_id
            parent = ancestor.parent_id
        return None

    phase_counts: Dict[int, int] = {}
    for span in spans:
        if span.name in PHASE_SPAN_NAMES:
            run_id = nearest_recorded_ancestor(span)
            if run_id is not None:
                phase_counts[run_id] = phase_counts.get(run_id, 0) + 1

    entries: List[Dict[str, Any]] = []
    for span in spans:
        kind = _RECORDED_SPANS.get(span.name)
        if kind is None:
            continue
        entry: Dict[str, Any] = {"kind": kind}
        for key, value in span.attributes.items():
            entry[key] = _scalar(value)
        entry["wall_seconds"] = span.duration
        if kind == "engine_run":
            entry["phases"] = phase_counts.get(span.span_id, 0)
        entries.append(entry)
    return entries


def record_session(telemetry) -> int:
    """Ledger a finished session's engine runs (cheap no-op when disabled)."""
    if ledger_dir() is None:
        return 0
    return append_entries(session_entries(telemetry))


def load_ledger(path: Union[str, Path]) -> List[Dict[str, Any]]:
    """Load ledger entries from a runs file or a ledger directory.

    Skips blank lines and records of other schemas, so a ledger file can be
    concatenated with other JSONL artifacts without confusing the loader.
    """
    target = Path(path)
    if target.is_dir():
        target = target / RUNS_FILENAME
    entries: List[Dict[str, Any]] = []
    with open(target) as handle:
        for line in handle:
            if not line.strip():
                continue
            try:
                record = json.loads(line)
            except json.JSONDecodeError:
                continue
            if record.get("schema") == LEDGER_SCHEMA:
                entries.append(record)
    return entries
